"""Hierarchical merge tree: log-depth cross-shard merging for wide clusters.

The flat :class:`~repro.cluster.merge.CrossShardMerger` prices every
cross-shard batch pair through one flattened kernel call whose *active
square* covers every batch with at least one unpruned partner.  With
time-localised streams the unpruned pairs form a narrow band, but the
active square still spans the whole cluster — at 64+ shards essentially
every batch has *some* unpruned contemporary, so the kernel evaluates
O((S·B·m)^2) elements even though only a band of them matters.

:class:`MergeTopology` arranges the shards as the leaves of a bounded-fanout
tree (shards → regional aggregators → root) and
:class:`HierarchicalMerger` prices each cross-shard batch pair at the pair's
*lowest common ancestor*: every interior node runs the existing flattened
merge kernel — shared :class:`~repro.core.engine.PairTableCache`,
:class:`~repro.cluster.merge.CertaintyWindows` pruning, ``np.add.reduceat``
segment reductions — over only its children's streams, in time-local
rectangular chunks sized to the unpruned band.  Total kernel work drops
from the active square to O(unpruned pairs · m²), independent of how wide
the cluster is.

Parity is *by construction*, not by approximation: per-pair block means are
bit-identical regardless of which kernel call computes them (each mean is
two sequential ``reduceat`` segment sums over the same floats — the
invariant :func:`~repro.cluster.merge._pair_block_forward` documents and the
streaming-parity suite pins), window pruning resolves exactly the pairs the
flat path resolves to the same saturated 0/1 floats, and the assembled
node-level matrix is handed to the *same*
:func:`~repro.cluster.merge._merge_from_matrix` linearisation the flat and
streaming paths share.  ``HierarchicalMerger.merge`` is therefore
byte-identical to :meth:`CrossShardMerger.merge` over the same streams —
the parity oracle the tree tests and the tree benchmark enforce.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from repro.cluster.merge import (
    CrossShardMerger,
    MergeOutcome,
    _empty_outcome,
    _merge_from_matrix,
    _NodeLayout,
)
from repro.core.engine import (
    _cached_gaussian_params,
    batched_gaussian_pairs,
    cross_probability_matrix,
)
from repro.core.probability import PrecedenceModel
from repro.network.message import SequencedBatch, TimestampedMessage

#: Topology kinds understood by :meth:`MergeTopology.build`.
TOPOLOGY_KINDS = ("flat", "binary", "region")

#: Default element budget of one chunked kernel call (rows·cols message
#: pairs).  Large enough to amortise per-call overhead, small enough that a
#: chunk's b-side union stays inside the time-local band.
DEFAULT_CHUNK_ELEMENTS = 1 << 18


def _gaussian_layout(
    batches: Sequence[SequencedBatch], model: PrecedenceModel
) -> Optional[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]:
    """Flattened per-message closed-form parameters, batch-major.

    Returns ``(timestamps, means, variances, offsets)`` where batch ``i``'s
    messages occupy ``[offsets[i], offsets[i + 1])`` — or ``None`` as soon
    as any client is grid-backed, sending every chunk through the generic
    :func:`cross_probability_matrix` entry instead.
    """
    cache: Dict[str, Optional[Tuple[float, float]]] = {}
    timestamps: List[float] = []
    means: List[float] = []
    variances: List[float] = []
    offsets = np.zeros(len(batches) + 1, dtype=np.int64)
    for index, batch in enumerate(batches):
        for message in batch.messages:
            params = _cached_gaussian_params(model, cache, message.client_id)
            if params is None:
                return None
            timestamps.append(message.timestamp)
            means.append(params[0])
            variances.append(params[1])
        offsets[index + 1] = len(timestamps)
    return (
        np.asarray(timestamps, dtype=float),
        np.asarray(means, dtype=float),
        np.asarray(variances, dtype=float),
        offsets,
    )

@dataclass(frozen=True)
class TreeNode:
    """One node of a merge topology (leaf = shard, interior = aggregator)."""

    node_id: int
    level: int
    shards: Tuple[int, ...]
    children: Tuple[int, ...]
    label: str

    @property
    def is_leaf(self) -> bool:
        """True for shard leaves (no children)."""
        return not self.children


class MergeTopology:
    """The shape of a hierarchical merge: shards as leaves of a fanout tree.

    Nodes are stored children-before-parents (leaves first), so a single
    forward pass over :attr:`nodes` visits every child before its parent —
    the evaluation order :class:`HierarchicalMerger` relies on.  The builder
    never assumes region-pure leaves: :meth:`region_affine` consumes the
    *actual* shard→regions assignment (:meth:`ShardRouter.region_map
    <repro.cluster.router.ShardRouter.region_map>`), which under round-robin
    region dealing may put several regions on one shard.
    """

    def __init__(self, nodes: Sequence[TreeNode], kind: str, fanout: int) -> None:
        self.nodes: List[TreeNode] = list(nodes)
        self.kind = kind
        self.fanout = int(fanout)
        self.root = self.nodes[-1]
        self._leaf_of: Dict[int, TreeNode] = {
            node.shards[0]: node for node in self.nodes if node.is_leaf
        }
        parent: Dict[int, int] = {}
        for node in self.nodes:
            for child in node.children:
                parent[child] = node.node_id
        self._paths: Dict[int, Tuple[int, ...]] = {}
        for shard, leaf in self._leaf_of.items():
            path = [leaf.node_id]
            while path[-1] in parent:
                path.append(parent[path[-1]])
            self._paths[shard] = tuple(path)
        num_shards = len(self._leaf_of)
        self._lca = np.full((num_shards, num_shards), -1, dtype=np.int64)
        for shard_a in range(num_shards):
            ancestors_a = set(self._paths[shard_a])
            for shard_b in range(num_shards):
                if shard_a == shard_b:
                    continue
                for node_id in self._paths[shard_b]:
                    if node_id in ancestors_a:
                        self._lca[shard_a, shard_b] = node_id
                        break

    # ------------------------------------------------------------- properties
    @property
    def num_shards(self) -> int:
        """Number of shard leaves."""
        return len(self._leaf_of)

    @property
    def depth(self) -> int:
        """Tree depth (root level; a single-leaf topology has depth 0)."""
        return self.root.level

    @property
    def interior_nodes(self) -> List[TreeNode]:
        """Aggregator nodes, children-before-parents (root last)."""
        return [node for node in self.nodes if not node.is_leaf]

    def leaf(self, shard: int) -> TreeNode:
        """The leaf node of ``shard``."""
        return self._leaf_of[shard]

    def path(self, shard: int) -> Tuple[int, ...]:
        """Node ids from ``shard``'s leaf up to (and including) the root."""
        return self._paths[shard]

    def lca(self, shard_a: int, shard_b: int) -> int:
        """Node id of the lowest common ancestor of two distinct shards."""
        return int(self._lca[shard_a, shard_b])

    def describe(self) -> List[Dict[str, object]]:
        """One row per node (report tables and the topology tests)."""
        return [
            {
                "node": node.node_id,
                "label": node.label,
                "level": node.level,
                "shards": len(node.shards),
                "children": len(node.children),
            }
            for node in self.nodes
        ]

    # ------------------------------------------------------------------ build
    @classmethod
    def flat(cls, num_shards: int) -> "MergeTopology":
        """Every shard directly under one root (the flat merge as a tree)."""
        return cls._from_leaf_order(range(num_shards), max(num_shards, 1), "flat")

    @classmethod
    def balanced(cls, num_shards: int, fanout: int = 2) -> "MergeTopology":
        """Log-depth tree grouping consecutive shard indices ``fanout`` at a time."""
        return cls._from_leaf_order(range(num_shards), fanout, "binary")

    @classmethod
    def region_affine(
        cls,
        region_map: Mapping[int, Sequence[str]],
        num_shards: int,
        fanout: int = 2,
    ) -> "MergeTopology":
        """Group shards serving lexicographically adjacent regions.

        ``region_map`` is the *actual* shard→regions assignment (round-robin
        dealing can place several regions on one shard); shards serving no
        region sort last by index.  An empty map degrades to the balanced
        index-order tree.
        """
        def sort_key(shard: int) -> Tuple[int, Tuple[str, ...], int]:
            regions = tuple(region_map.get(shard, ()))
            return (0 if regions else 1, regions, shard)

        order = sorted(range(num_shards), key=sort_key)
        return cls._from_leaf_order(order, fanout, "region")

    @classmethod
    def build(
        cls,
        kind: str,
        num_shards: int,
        fanout: int = 2,
        region_map: Optional[Mapping[int, Sequence[str]]] = None,
    ) -> "MergeTopology":
        """Dispatch on a topology name (the CLI / cluster-config entry point)."""
        if kind == "flat":
            return cls.flat(num_shards)
        if kind == "binary":
            return cls.balanced(num_shards, fanout=fanout)
        if kind == "region":
            return cls.region_affine(region_map or {}, num_shards, fanout=fanout)
        raise ValueError(f"unknown merge topology {kind!r}; expected one of {TOPOLOGY_KINDS}")

    @classmethod
    def _from_leaf_order(cls, shard_order, fanout: int, kind: str) -> "MergeTopology":
        shard_order = list(shard_order)
        if not shard_order:
            raise ValueError("a merge topology needs at least one shard")
        if fanout < 2 and len(shard_order) > 1:
            raise ValueError(f"fanout must be at least 2, got {fanout!r}")
        nodes: List[TreeNode] = [
            TreeNode(
                node_id=index,
                level=0,
                shards=(shard,),
                children=(),
                label=f"shard-{shard}",
            )
            for index, shard in enumerate(shard_order)
        ]
        current = [node.node_id for node in nodes]
        while len(current) > 1:
            grouped: List[int] = []
            for start in range(0, len(current), fanout):
                chunk = current[start : start + fanout]
                if len(chunk) == 1:
                    # a lone trailing subtree needs no aggregator of its own
                    grouped.append(chunk[0])
                    continue
                level = max(nodes[child].level for child in chunk) + 1
                node = TreeNode(
                    node_id=len(nodes),
                    level=level,
                    shards=tuple(
                        shard for child in chunk for shard in nodes[child].shards
                    ),
                    children=tuple(chunk),
                    label=f"L{level}.{len(grouped)}",
                )
                nodes.append(node)
                grouped.append(node.node_id)
            current = grouped
        return cls(nodes, kind, fanout)


class HierarchicalMerger:
    """Offline tree merge: per-LCA pair pricing + the shared linearisation.

    Wraps a :class:`CrossShardMerger` (sharing its model, pair-table cache,
    certainty windows and engine counters) and replaces only the
    forward-matrix phase: each interior node of ``topology`` resolves the
    batch pairs whose lowest common ancestor it is — window pruning first,
    then time-local chunked kernel calls for the unpruned band — and the
    full node-level matrix feeds the same linearise+coalesce primitive the
    flat merge uses.  Byte-identical to :meth:`CrossShardMerger.merge` over
    the same streams (see the module docstring for why).
    """

    def __init__(
        self,
        merger: CrossShardMerger,
        topology: MergeTopology,
        chunk_elements: int = DEFAULT_CHUNK_ELEMENTS,
    ) -> None:
        if chunk_elements < 1:
            raise ValueError(f"chunk_elements must be positive, got {chunk_elements!r}")
        self._merger = merger
        self._topology = topology
        self._chunk_elements = int(chunk_elements)
        self._rng = np.random.default_rng(merger.seed)
        self._node_report: List[Dict[str, object]] = []

    @property
    def topology(self) -> MergeTopology:
        """The merge tree shape."""
        return self._topology

    @property
    def node_report(self) -> List[Dict[str, object]]:
        """Per-interior-node pruned/kernel pair counts of the last merge."""
        return [dict(row) for row in self._node_report]

    # ----------------------------------------------------------------- merge
    def merge(self, shard_batches: Sequence[Sequence[SequencedBatch]]) -> MergeOutcome:
        """Merge per-shard batch streams through the tree.

        Accepts at most ``topology.num_shards`` streams (missing trailing
        shards contribute empty streams, like the streaming merger's
        pre-created shard list).
        """
        start = time.perf_counter()
        streams = [list(batches) for batches in shard_batches]
        if len(streams) > self._topology.num_shards:
            raise ValueError(
                f"{len(streams)} shard streams for a {self._topology.num_shards}-leaf topology"
            )
        while len(streams) < self._topology.num_shards:
            streams.append([])
        if not any(streams):
            self._node_report = []
            return _empty_outcome(start)
        layout = _NodeLayout(streams)
        matrix, evaluated, pruned = self._tree_forward_matrix(streams, layout)
        return _merge_from_matrix(
            streams,
            matrix,
            self._merger.threshold,
            self._merger.cycle_policy,
            self._rng,
            evaluated,
            pruned,
            start,
            stats=self._merger.engine_stats,
            layout=layout,
            obs=self._merger.observer,
        )

    # ---------------------------------------------------------------- kernel
    def _tree_forward_matrix(
        self, streams: Sequence[Sequence[SequencedBatch]], layout: _NodeLayout
    ) -> Tuple[np.ndarray, int, int]:
        """Assemble the node-level forward matrix by LCA-partitioned pricing.

        Returns ``(matrix, cross_pairs_evaluated, cross_pairs_pruned)`` with
        exactly the float content :meth:`CrossShardMerger._forward_matrix`
        produces for the same streams.
        """
        windows = self._merger.certainty_windows
        obs = self._merger.observer
        n = len(layout.nodes)
        batches = [streams[shard][index] for shard, index in layout.nodes]
        gauss = _gaussian_layout(batches, self._merger.model)
        sizes = np.asarray([batch.size for batch in batches], dtype=np.int64)
        bounds = [windows.batch_window(batch) for batch in batches]
        earliest = np.asarray([bound[0] for bound in bounds], dtype=float)
        latest = np.asarray([bound[1] for bound in bounds], dtype=float)
        node_shard = layout.node_shard
        matrix = np.full((n, n), np.nan)

        # shard-major layout: shard s owns one contiguous slice of batch ids
        shard_slices: List[np.ndarray] = []
        base = 0
        for length in layout.shard_lengths:
            shard_slices.append(np.arange(base, base + length, dtype=np.int64))
            base += length

        members: Dict[int, np.ndarray] = {}
        report: List[Dict[str, object]] = []
        total_evaluated = 0
        total_pruned = 0
        for tree_node in self._topology.nodes:
            if tree_node.is_leaf:
                members[tree_node.node_id] = shard_slices[tree_node.shards[0]]
                continue
            child_members = [members[child] for child in tree_node.children]
            members[tree_node.node_id] = np.concatenate(child_members)
            node_pruned = 0
            pair_a_parts: List[np.ndarray] = []
            pair_b_parts: List[np.ndarray] = []
            for i, side_a in enumerate(child_members):
                if side_a.size == 0:
                    continue
                for side_b in child_members[i + 1 :]:
                    if side_b.size == 0:
                        continue
                    # window pruning on the A×B grid: the same non-overlap
                    # conditions (and the same exact 0/1 floats) as the flat
                    # kernel's prune_after / prune_before masks
                    a_before = earliest[side_b][None, :] > latest[side_a][:, None]
                    b_before = earliest[side_a][:, None] > latest[side_b][None, :]
                    if a_before.any():
                        rows, cols = np.nonzero(a_before)
                        matrix[side_a[rows], side_b[cols]] = 1.0
                        matrix[side_b[cols], side_a[rows]] = 0.0
                    if b_before.any():
                        rows, cols = np.nonzero(b_before)
                        matrix[side_a[rows], side_b[cols]] = 0.0
                        matrix[side_b[cols], side_a[rows]] = 1.0
                    node_pruned += int(a_before.sum()) + int(b_before.sum())
                    needs = ~(a_before | b_before)
                    if needs.any():
                        rows, cols = np.nonzero(needs)
                        u_ids = side_a[rows]
                        v_ids = side_b[cols]
                        # canonical orientation: the lower-shard batch is the
                        # kernel's a-side, exactly like the flat upper-triangle
                        swap = node_shard[v_ids] < node_shard[u_ids]
                        pair_a_parts.append(np.where(swap, v_ids, u_ids))
                        pair_b_parts.append(np.where(swap, u_ids, v_ids))
            node_kernel = 0
            if pair_a_parts:
                pair_a = np.concatenate(pair_a_parts)
                pair_b = np.concatenate(pair_b_parts)
                node_kernel = int(pair_a.size)
                self._evaluate_pairs(pair_a, pair_b, batches, sizes, earliest, matrix, gauss)
            total_pruned += node_pruned
            total_evaluated += node_kernel
            report.append(
                {
                    "node": tree_node.node_id,
                    "label": tree_node.label,
                    "level": tree_node.level,
                    "shards": len(tree_node.shards),
                    "pruned_pairs": node_pruned,
                    "kernel_pairs": node_kernel,
                }
            )
            if obs.enabled:
                obs.count(f"merge.tree.level{tree_node.level}.pruned_pairs", node_pruned)
                obs.count(f"merge.tree.level{tree_node.level}.kernel_pairs", node_kernel)
        self._merger.engine_stats.pruned_pairs += total_pruned
        self._node_report = report
        return matrix, total_evaluated, total_pruned

    def _evaluate_pairs(
        self,
        pair_a: np.ndarray,
        pair_b: np.ndarray,
        batches: Sequence[SequencedBatch],
        sizes: np.ndarray,
        earliest: np.ndarray,
        matrix: np.ndarray,
        gauss: Optional[Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]],
    ) -> None:
        """Price canonical kernel pairs through chunked rectangular calls.

        All-Gaussian message sets take the per-pair flat path: exactly the
        requested message pairs are evaluated (no rectangle slack) and the
        two-stage segment reduction replays the flat kernel's summation
        order bit for bit.  Otherwise pairs are grouped by a-side batch,
        a-side groups are chunked in certainty-window order (so each
        rectangle's b-side union stays inside the time-local band), and each
        chunk is one :func:`cross_probability_matrix` call reduced by the
        same two ``np.add.reduceat`` segment reductions as the flat kernel —
        each pair's mean is the identical float sequence no matter which
        chunk (or which flat active-square call) computes it.
        """
        if gauss is not None:
            self._evaluate_pairs_gaussian(pair_a, pair_b, sizes, matrix, gauss)
            return
        order = np.lexsort((pair_b, pair_a))
        pair_a = pair_a[order]
        pair_b = pair_b[order]
        a_ids, group_starts, group_counts = np.unique(
            pair_a, return_index=True, return_counts=True
        )
        group_order = np.lexsort((a_ids, earliest[a_ids]))

        chunk: List[int] = []
        chunk_rows = 0
        b_union: Set[int] = set()
        b_messages = 0

        def flush() -> None:
            nonlocal chunk, chunk_rows, b_union, b_messages
            if chunk:
                self._evaluate_chunk(
                    chunk, a_ids, group_starts, group_counts, pair_b, batches, sizes, matrix
                )
            chunk = []
            chunk_rows = 0
            b_union = set()
            b_messages = 0

        for group in group_order:
            start = int(group_starts[group])
            partners = pair_b[start : start + int(group_counts[group])]
            fresh = [int(b) for b in partners.tolist() if int(b) not in b_union]
            projected = (chunk_rows + int(sizes[a_ids[group]])) * (
                b_messages + sum(int(sizes[b]) for b in fresh)
            )
            if chunk and projected > self._chunk_elements:
                flush()
                fresh = [int(b) for b in partners.tolist()]
            chunk.append(int(group))
            chunk_rows += int(sizes[a_ids[group]])
            for b in fresh:
                b_union.add(b)
                b_messages += int(sizes[b])
        flush()

    def _evaluate_pairs_gaussian(
        self,
        pair_a: np.ndarray,
        pair_b: np.ndarray,
        sizes: np.ndarray,
        matrix: np.ndarray,
        gauss: Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
    ) -> None:
        """Closed-form pair pricing without rectangle slack.

        Builds the exact (row message, col message) index pairs of every
        requested batch pair, evaluates them in one 1-D closed-form pass,
        and reduces per-pair means in two ``np.add.reduceat`` stages — first
        per (pair, row-message) segment, then per pair — the identical
        addition sequence the rectangular chunk (and the flat kernel's
        active square) performs, so the means match bit for bit.  Pairs are
        sliced to the chunk element budget only to bound the temporaries;
        slicing never regroups a pair's additions.
        """
        ts, mu, var, offsets = gauss
        sizes_a = sizes[pair_a]
        sizes_b = sizes[pair_b]
        elements = sizes_a * sizes_b
        budget = max(self._chunk_elements, int(elements.max()))
        bounds = np.concatenate(([0], np.cumsum(elements)))
        stats = self._merger.engine_stats
        start = 0
        while start < pair_a.size:
            stop = int(np.searchsorted(bounds, bounds[start] + budget, side="right")) - 1
            stop = max(stop, start + 1)
            p_a = pair_a[start:stop]
            p_b = pair_b[start:stop]
            s_a = sizes_a[start:stop]
            s_b = sizes_b[start:stop]
            counts = elements[start:stop]
            total = int(counts.sum())
            span_a = int(s_a[0])
            span_b_0 = int(s_b[0])
            if np.all(s_a == span_a) and np.all(s_b == span_b_0):
                # uniform spans (the wide-cluster common case): pair-major /
                # row-major / col-within element order built by broadcasting —
                # identical order and reduceat boundaries to the generic path
                # below, just without the per-element division
                shape = (p_a.size, span_a, span_b_0)
                row_index = np.broadcast_to(
                    (offsets[p_a][:, None] + np.arange(span_a, dtype=np.int64))[:, :, None],
                    shape,
                ).ravel()
                col_index = np.broadcast_to(
                    (offsets[p_b][:, None] + np.arange(span_b_0, dtype=np.int64))[:, None, :],
                    shape,
                ).ravel()
                row_starts = np.arange(0, total, span_b_0, dtype=np.int64)
                pair_starts = np.arange(0, p_a.size * span_a, span_a, dtype=np.int64)
            else:
                pair_of = np.repeat(np.arange(p_a.size, dtype=np.int64), counts)
                starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
                local = np.arange(total, dtype=np.int64) - starts[pair_of]
                span_b = s_b[pair_of]
                i_local = local // span_b
                j_local = local - i_local * span_b
                row_index = offsets[p_a][pair_of] + i_local
                col_index = offsets[p_b][pair_of] + j_local
                row_starts = np.flatnonzero(j_local == 0)
                pair_starts = np.concatenate(([0], np.cumsum(s_a)[:-1]))
            probabilities = batched_gaussian_pairs(
                ts[row_index],
                mu[row_index],
                var[row_index],
                ts[col_index],
                mu[col_index],
                var[col_index],
            )
            stats.vectorized_evaluations += total
            row_sums = np.add.reduceat(probabilities, row_starts)
            pair_sums = np.add.reduceat(row_sums, pair_starts)
            forwards = pair_sums / counts
            matrix[p_a, p_b] = forwards
            matrix[p_b, p_a] = 1.0 - forwards
            start = stop

    def _evaluate_chunk(
        self,
        groups: Sequence[int],
        a_ids: np.ndarray,
        group_starts: np.ndarray,
        group_counts: np.ndarray,
        pair_b: np.ndarray,
        batches: Sequence[SequencedBatch],
        sizes: np.ndarray,
        matrix: np.ndarray,
    ) -> None:
        chunk_a = np.asarray([int(a_ids[group]) for group in groups], dtype=np.int64)
        partner_parts = [
            pair_b[int(group_starts[group]) : int(group_starts[group]) + int(group_counts[group])]
            for group in groups
        ]
        all_partners = np.concatenate(partner_parts)
        b_set = np.unique(all_partners)
        row_starts = np.concatenate(([0], np.cumsum(sizes[chunk_a])[:-1]))
        col_starts = np.concatenate(([0], np.cumsum(sizes[b_set])[:-1]))
        row_messages: List[TimestampedMessage] = []
        for a in chunk_a.tolist():
            row_messages.extend(batches[a].messages)
        col_messages: List[TimestampedMessage] = []
        for b in b_set.tolist():
            col_messages.extend(batches[b].messages)
        probabilities = cross_probability_matrix(
            row_messages,
            col_messages,
            self._merger.model,
            stats=self._merger.engine_stats,
            tables=self._merger.pair_tables,
        )
        column_sums = np.add.reduceat(probabilities, col_starts, axis=1)
        pair_sums = np.add.reduceat(column_sums, row_starts, axis=0)
        means = pair_sums / np.outer(sizes[chunk_a], sizes[b_set])
        row_of_pair = np.repeat(
            np.arange(len(groups), dtype=np.int64),
            [part.size for part in partner_parts],
        )
        cols = np.searchsorted(b_set, all_partners)
        forwards = means[row_of_pair, cols]
        a_nodes = chunk_a[row_of_pair]
        matrix[a_nodes, all_partners] = forwards
        matrix[all_partners, a_nodes] = 1.0 - forwards
