"""The sharded fair-sequencing cluster.

:class:`ShardedSequencer` runs one
:class:`~repro.core.online.OnlineTommySequencer` per shard on a shared
:class:`~repro.simulation.EventLoop`.  Clients are routed to shards by a
:class:`~repro.cluster.router.ShardRouter`; each shard sequences only its own
clients, so per-arrival cost drops from O(n^2) over the whole pending set to
O((n/S)^2) per shard.  The cluster-wide order is recovered afterwards by the
probabilistic :class:`~repro.cluster.merge.CrossShardMerger`.

Failover: when a shard-heartbeat interval is configured, every live shard
ticks a heartbeat on the loop and a monitor watches for silence.  A shard
whose heartbeat goes stale is declared dead; its clients are drained onto the
least-loaded survivors and its pending (unemitted) messages — plus anything
that arrived for it while it was silently down — are replayed into the new
owners.  Batches the dead shard emitted before crashing remain part of the
cluster history and participate in the final merge.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple, Union

from repro.cluster.intake import IntakeDedupeGate
from repro.cluster.merge import CrossShardMerger, MergeOutcome, StreamingMerger
from repro.cluster.router import ShardingPolicy, ShardRouter
from repro.cluster.tree import HierarchicalMerger, MergeTopology
from repro.core.config import TommyConfig
from repro.core.engine import EngineStats
from repro.core.online import EmittedBatch, OnlineTommySequencer
from repro.core.probability import PrecedenceModel
from repro.distributions.base import OffsetDistribution
from repro.network.message import Heartbeat, SequencedBatch, TimestampedMessage
from repro.obs.telemetry import Telemetry, resolve
from repro.runtime.base import Scheduler
from repro.sequencers.base import SequencingResult
from repro.simulation.entity import Entity
from repro.sync.estimator import OffsetEstimator
from repro.sync.probe import SyncProbe
from repro.sync.refresh import DistributionRefreshLoop


@dataclass(frozen=True)
class FailoverEvent:
    """Record of one shard failover."""

    shard: int
    detected_at: float
    clients_moved: int
    messages_replayed: int


@dataclass(frozen=True)
class RejoinEvent:
    """Record of one shard rejoining the cluster after a crash."""

    shard: int
    rejoined_at: float
    clients_reclaimed: int


@dataclass
class ShardState:
    """Mutable per-shard bookkeeping."""

    index: int
    sequencer: OnlineTommySequencer
    alive: bool = True
    crashed: bool = False
    last_heartbeat: float = 0.0
    backlog: List[Union[TimestampedMessage, Heartbeat]] = field(default_factory=list)
    #: batches emitted by previous incarnations of this shard (before a
    #: crash + rejoin); they stay part of the cluster history and the merge
    retired: List[EmittedBatch] = field(default_factory=list)
    #: how many times the shard has rejoined with a fresh sequencer process
    generation: int = 0


class ShardedSequencer(Entity):
    """A cluster of per-shard online Tommy sequencers with cross-shard merge."""

    #: Seen-key count past which :meth:`observability_report` flags the
    #: exactly-once gate's memory growth.  With the delivery-horizon pruning
    #: rule (the default) the retained set stays bounded by the per-client
    #: in-flight window, so tripping this warning means pruning is disabled
    #: (``dedupe_prune_horizon=False``) or traffic carries no usable
    #: per-client sequence numbers.  Overridable per instance in tests.
    DEDUPE_WARN_THRESHOLD = 1_000_000

    def __init__(
        self,
        loop: Scheduler,
        client_distributions: Dict[str, OffsetDistribution],
        num_shards: int,
        config: Optional[TommyConfig] = None,
        policy: Optional[ShardingPolicy] = None,
        router: Optional[ShardRouter] = None,
        merge_threshold: Optional[float] = None,
        heartbeat_interval: Optional[float] = None,
        heartbeat_timeout: Optional[float] = None,
        name: str = "cluster",
        use_engine: bool = True,
        streaming_merge: bool = True,
        dedupe_intake: bool = False,
        dedupe_prune_horizon: bool = True,
        telemetry: Optional[Telemetry] = None,
        merge_topology: str = "flat",
        merge_fanout: int = 2,
    ) -> None:
        super().__init__(loop, name)
        if heartbeat_interval is not None and heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive when given")
        self._config = config if config is not None else TommyConfig()
        self._use_engine = use_engine
        self._telemetry = telemetry
        self._obs = resolve(telemetry)
        self._distributions = dict(client_distributions)
        if router is not None:
            if router.num_shards != num_shards:
                raise ValueError(
                    f"router has {router.num_shards} shards, cluster expects {num_shards}"
                )
            self._router = router
        else:
            self._router = ShardRouter(num_shards, policy)
        for client_id in sorted(self._distributions):
            self._router.assign(client_id)

        self._shards: List[ShardState] = []
        for index in range(num_shards):
            shard_clients = self._router.clients_of(index)
            sequencer = OnlineTommySequencer(
                loop,
                {client: self._distributions[client] for client in shard_clients},
                config=self._config,
                known_clients=shard_clients,
                name=f"{name}-shard-{index}",
                use_engine=use_engine,
                telemetry=telemetry,
                shard_index=index,
            )
            self._shards.append(
                ShardState(index=index, sequencer=sequencer, last_heartbeat=self.now)
            )

        merge_model = PrecedenceModel(
            method=self._config.probability_method,
            convolution_points=self._config.convolution_points,
        )
        for client_id, distribution in self._distributions.items():
            merge_model.register_client(client_id, distribution)
        self._merger = CrossShardMerger(
            merge_model,
            threshold=self._config.threshold if merge_threshold is None else merge_threshold,
            cycle_policy=self._config.cycle_policy,
            seed=self._config.seed if self._config.seed is not None else 0,
            telemetry=telemetry,
        )
        # hierarchical merge: "binary"/"region" arrange the shards as leaves
        # of a bounded-fanout tree and price every cross-shard batch pair at
        # its lowest common ancestor — same merged order (parity-tested),
        # log-depth kernel work at wide shard counts
        self._merge_topology_kind = merge_topology
        self._merge_fanout = int(merge_fanout)
        self._topology: Optional[MergeTopology] = None
        self._tree_merger: Optional[HierarchicalMerger] = None
        if merge_topology != "flat":
            self._topology = MergeTopology.build(
                merge_topology,
                num_shards,
                fanout=merge_fanout,
                region_map=self._router.region_map(),
            )
            self._tree_merger = self._merger.tree_merger(self._topology)
        # live merged order: every shard emission streams into an incremental
        # merger, so draining the cluster is a linearisation of maintained
        # state instead of an O(everything) re-merge; merge() stays available
        # as the offline parity oracle
        self._streaming: Optional[StreamingMerger] = None
        if streaming_merge:
            self._streaming = self._merger.streaming_merger(
                num_shards=num_shards, topology=self._topology
            )
            for shard in self._shards:
                shard.sequencer.subscribe_emissions(self._emission_observer(shard.index))

        self._failover_events: List[FailoverEvent] = []
        self._rejoin_events: List[RejoinEvent] = []
        self._retired_engine_stats = EngineStats()
        self._refresh_loop: Optional[DistributionRefreshLoop] = None
        self._distribution_refreshes = 0
        # exactly-once intake: with dedupe enabled, a (client, message) key
        # is accepted at the cluster boundary once; faulty networks that
        # duplicate deliveries cannot double-sequence a message.  The gate
        # (delivery-horizon pruning rule included) lives in
        # cluster.intake.IntakeDedupeGate so the live ingestion edge can
        # share the exact same admission semantics at submit time.
        self._gate = IntakeDedupeGate(
            enabled=dedupe_intake,
            prune_horizon=dedupe_prune_horizon,
            telemetry=telemetry,
            clock=lambda: self.now,
        )
        self._heartbeat_interval = heartbeat_interval
        self._heartbeat_timeout = (
            heartbeat_timeout
            if heartbeat_timeout is not None
            else (3.0 * heartbeat_interval if heartbeat_interval is not None else None)
        )
        self._monitor_running = False
        if heartbeat_interval is not None:
            for shard in self._shards:
                self.call_after(heartbeat_interval, self._shard_heartbeat_tick, shard.index)
            self.call_after(heartbeat_interval, self._monitor_tick)
            self._monitor_running = True
        if self._obs.enabled:
            # fold the pre-existing stats surfaces into registry snapshots
            # (re-read at snapshot time, so they track the live cluster)
            self._obs.attach("cluster.engine", self.engine_stats)
            self._obs.attach("cluster.learning", self.learning_stats)
            self._obs.attach("cluster.loop", loop)
            self._obs.attach("cluster.merge", self.merge_report)

    # ------------------------------------------------------------- properties
    @property
    def num_shards(self) -> int:
        """Number of shards (including failed ones)."""
        return len(self._shards)

    @property
    def router(self) -> ShardRouter:
        """The client-to-shard routing table."""
        return self._router

    @property
    def config(self) -> TommyConfig:
        """Per-shard sequencer configuration."""
        return self._config

    @property
    def merger(self) -> CrossShardMerger:
        """The cross-shard merger (cluster-wide precedence model)."""
        return self._merger

    @property
    def streaming_merger(self) -> Optional[StreamingMerger]:
        """The live incremental merger (``None`` when streaming is disabled)."""
        return self._streaming

    @property
    def merge_topology(self) -> Optional[MergeTopology]:
        """The hierarchical merge tree (``None`` for the flat merge)."""
        return self._topology

    @property
    def tree_merger(self) -> Optional[HierarchicalMerger]:
        """The offline hierarchical merger (``None`` for the flat merge)."""
        return self._tree_merger

    def merge_report(self) -> Dict[str, object]:
        """Merge-layer topology + per-node pruning/kernel accounting.

        ``nodes`` carries one row per merge node — with streaming on, the
        live incremental counters; otherwise the last offline tree merge's.
        Attached to the metrics registry as ``cluster.merge``.
        """
        report: Dict[str, object] = {
            "topology": self._merge_topology_kind,
            "fanout": self._merge_fanout if self._topology is not None else self.num_shards,
            "depth": self._topology.depth if self._topology is not None else 1,
            "cross_pairs_evaluated": (
                self._streaming.cross_pairs_evaluated if self._streaming is not None else 0
            ),
            "cross_pairs_pruned": (
                self._streaming.cross_pairs_pruned if self._streaming is not None else 0
            ),
        }
        if self._streaming is not None:
            report["nodes"] = self._streaming.node_report()
        elif self._tree_merger is not None:
            report["nodes"] = self._tree_merger.node_report
        else:
            report["nodes"] = []
        return report

    def _emission_observer(self, shard_index: int):
        def observe(emitted: EmittedBatch) -> None:
            self._streaming.observe_batch(shard_index, emitted.batch)

        return observe

    @property
    def shards(self) -> List[ShardState]:
        """Per-shard states (live view, do not mutate)."""
        return list(self._shards)

    @property
    def alive_shards(self) -> List[int]:
        """Indices of shards currently considered alive."""
        return [shard.index for shard in self._shards if shard.alive]

    @property
    def failover_events(self) -> List[FailoverEvent]:
        """Failovers performed so far."""
        return list(self._failover_events)

    def sequencer_of(self, shard: int) -> OnlineTommySequencer:
        """The online sequencer backing ``shard``."""
        return self._shards[shard].sequencer

    def register_client(self, client_id: str, distribution: OffsetDistribution) -> None:
        """Register a new client cluster-wide and route it to a shard.

        Sharding policies are unaware of failovers, so an assignment landing
        on a dead shard is immediately redirected to a live one.
        """
        self._distributions[client_id] = distribution
        self._merger.register_client(client_id, distribution)
        shard = self._live_owner(client_id)
        self._shards[shard].sequencer.register_client(client_id, distribution)

    def update_client_distribution(
        self, client_id: str, distribution: OffsetDistribution
    ) -> None:
        """Refresh a known client's distribution cluster-wide.

        The owner shard's online sequencer absorbs the update (invalidating
        its engine caches and rebuilding live rows) and the cross-shard
        merger re-prices future batch precedences with the new distribution.
        """
        if client_id not in self._distributions:
            raise KeyError(
                f"client {client_id!r} is not registered; use register_client for new clients"
            )
        self._distributions[client_id] = distribution
        self._merger.register_client(client_id, distribution)
        if self._streaming is not None:
            self._streaming.refresh_client(client_id)
        shard = self._live_owner(client_id)
        self._shards[shard].sequencer.update_client_distribution(client_id, distribution)
        self._distribution_refreshes += 1

    # --------------------------------------------------------------- learning
    def attach_learning(
        self,
        method: str = "empirical",
        window: int = 256,
        refresh_every: int = 32,
        min_observations: int = 8,
        estimator: Optional[OffsetEstimator] = None,
    ) -> DistributionRefreshLoop:
        """Attach a probe-driven refresh loop feeding this cluster.

        Probes delivered to :meth:`observe_probe` accumulate in per-client
        learners; every ``refresh_every`` probes a client's distribution is
        re-estimated and pushed through :meth:`update_client_distribution`.
        """
        self._refresh_loop = DistributionRefreshLoop(
            self,
            method=method,
            window=window,
            refresh_every=refresh_every,
            min_observations=min_observations,
            estimator=estimator,
            telemetry=self._telemetry,
        )
        return self._refresh_loop

    @property
    def refresh_loop(self) -> Optional[DistributionRefreshLoop]:
        """The attached refresh loop, if any."""
        return self._refresh_loop

    def observe_probe(self, probe: SyncProbe) -> None:
        """Feed one sync probe into the attached learning loop."""
        if self._refresh_loop is None:
            raise ValueError("no learning loop attached; call attach_learning first")
        self._refresh_loop.observe_probe(probe)

    def learning_stats(self) -> Dict[str, object]:
        """Cluster-wide refresh accounting (for result metadata and sweeps)."""
        stats: Dict[str, object] = {
            "distribution_refreshes": self._distribution_refreshes,
            "per_shard_refreshes": [
                shard.sequencer.distribution_refreshes for shard in self._shards
            ],
        }
        if self._refresh_loop is not None:
            stats.update(self._refresh_loop.stats.as_dict())
        return stats

    def _live_owner(self, client_id: str) -> int:
        """The client's owner shard, rerouted off dead shards if needed.

        Crashed-but-undetected shards still count as owners (their inbox is
        the backlog, replayed at detection); only drained shards are dead.
        """
        owner = self._router.assign(client_id)
        if self._shards[owner].alive:
            return owner
        alive = [shard.index for shard in self._shards if shard.alive]
        if not alive:
            raise ValueError(f"no alive shard left to own client {client_id!r}")
        loads = self._router.loads
        target = min(alive, key=lambda index: (loads[index], index))
        self._router.reassign(client_id, target)
        self._shards[target].sequencer.register_client(
            client_id, self._distributions[client_id]
        )
        return target

    # ----------------------------------------------------------------- intake
    @property
    def duplicates_suppressed(self) -> int:
        """Messages rejected by the exactly-once intake gate so far."""
        return self._gate.duplicates_suppressed

    @property
    def dedupe_keys_pruned(self) -> int:
        """Seen keys released by the delivery-horizon pruning rule so far."""
        return self._gate.keys_pruned

    @property
    def intake_gate(self) -> IntakeDedupeGate:
        """The cluster-boundary exactly-once gate (shared with the live edge)."""
        return self._gate

    def _is_duplicate(self, item: Union[TimestampedMessage, Heartbeat]) -> bool:
        """Exactly-once gate at the cluster boundary (messages only).

        Delegates to :class:`~repro.cluster.intake.IntakeDedupeGate`.
        Internal routing and failover replay bypass this gate
        (:meth:`_route` and friends): a replayed pending message was already
        admitted once and must reach its new owner.
        """
        return self._gate.is_duplicate(item)

    def receive(
        self, item: Union[TimestampedMessage, Heartbeat], arrival_time: Optional[float] = None
    ) -> None:
        """Route an arriving message or heartbeat to its owner shard.

        Signature-compatible with
        :meth:`repro.core.online.OnlineTommySequencer.receive`, so a cluster
        can replace a single sequencer wherever one is wired in.
        """
        if self._is_duplicate(item):
            return
        self._route(item, arrival_time)

    def receive_at(
        self,
        shard_index: int,
        item: Union[TimestampedMessage, Heartbeat],
        arrival_time: Optional[float] = None,
    ) -> None:
        """Deliver ``item`` to a specific shard's fan-in endpoint.

        This is the hook per-shard :class:`~repro.network.transport.Transport`
        endpoints are wired to.  A crashed-but-undetected shard buffers the
        item (replayed at failover); a drained shard forwards through the
        router to the client's new owner.
        """
        if self._is_duplicate(item):
            return
        self._route_at(shard_index, item, arrival_time)

    def receive_many(
        self,
        items: Iterable[Union[TimestampedMessage, Heartbeat]],
        arrival_time: Optional[float] = None,
    ) -> None:
        """Route a simultaneity burst to the owner shards in one pass.

        Items are grouped by live owner (preserving per-client order) and
        each shard absorbs its sub-burst through
        :meth:`~repro.core.online.OnlineTommySequencer.receive_many` — one
        vectorized block append and one emission check per shard instead of
        one per message.
        """
        burst = [item for item in items if not self._is_duplicate(item)]
        self._route_many(burst, arrival_time)

    def receive_many_at(
        self,
        shard_index: int,
        items: Iterable[Union[TimestampedMessage, Heartbeat]],
        arrival_time: Optional[float] = None,
    ) -> None:
        """Deliver a burst to a specific shard's fan-in endpoint.

        The burst counterpart of :meth:`receive_at`, with the same
        crashed/backlog semantics; coalescing
        :class:`~repro.network.transport.Transport` endpoints wire their
        burst callback here.
        """
        burst = [item for item in items if not self._is_duplicate(item)]
        self._route_many_at(shard_index, burst, arrival_time)

    def _route(
        self, item: Union[TimestampedMessage, Heartbeat], arrival_time: Optional[float] = None
    ) -> None:
        self._route_at(self._live_owner(item.client_id), item, arrival_time)

    def _route_at(
        self,
        shard_index: int,
        item: Union[TimestampedMessage, Heartbeat],
        arrival_time: Optional[float] = None,
    ) -> None:
        shard = self._shards[shard_index]
        if shard.crashed and shard.alive:
            # down but not yet detected: the item is in the dead shard's inbox
            shard.backlog.append(item)
            return
        if not shard.alive:
            # already failed over: reroute to the client's live owner (which
            # may itself be crashed-but-undetected, in which case it backlogs)
            self._route_at(self._live_owner(item.client_id), item, arrival_time)
            return
        if not shard.sequencer.model.has_client(item.client_id):
            # stale channel: after a crash + rejoin the shard is alive again
            # but did not reclaim this client — respect the router instead of
            # handing the fresh sequencer a client it never registered
            owner = self._live_owner(item.client_id)
            if owner != shard_index:
                self._route_at(owner, item, arrival_time)
                return
            if item.client_id in self._distributions:
                shard.sequencer.register_client(
                    item.client_id, self._distributions[item.client_id]
                )
        if self._obs.enabled and isinstance(item, TimestampedMessage):
            self._obs.stage("shard_intake", item, self.now, shard=shard_index)
        shard.sequencer.receive(item, arrival_time)

    def _route_many(
        self,
        items: Iterable[Union[TimestampedMessage, Heartbeat]],
        arrival_time: Optional[float] = None,
    ) -> None:
        by_shard: Dict[int, List[Union[TimestampedMessage, Heartbeat]]] = {}
        for item in items:
            by_shard.setdefault(self._live_owner(item.client_id), []).append(item)
        for shard_index, shard_items in by_shard.items():
            self._route_many_at(shard_index, shard_items, arrival_time)

    def _route_many_at(
        self,
        shard_index: int,
        items: Iterable[Union[TimestampedMessage, Heartbeat]],
        arrival_time: Optional[float] = None,
    ) -> None:
        burst = list(items)
        if not burst:
            return
        shard = self._shards[shard_index]
        if shard.crashed and shard.alive:
            shard.backlog.extend(burst)
            return
        if not shard.alive:
            self._route_many(burst, arrival_time)
            return
        if any(not shard.sequencer.model.has_client(item.client_id) for item in burst):
            # stale channel after a rejoin: peel off items whose clients this
            # shard no longer owns (see _route_at) and deliver the rest as
            # one burst
            deliverable: List[Union[TimestampedMessage, Heartbeat]] = []
            for item in burst:
                if shard.sequencer.model.has_client(item.client_id):
                    deliverable.append(item)
                else:
                    self._route_at(shard_index, item, arrival_time)
            burst = deliverable
            if not burst:
                return
        if self._obs.enabled:
            for item in burst:
                if isinstance(item, TimestampedMessage):
                    self._obs.stage("shard_intake", item, self.now, shard=shard_index)
        shard.sequencer.receive_many(burst, arrival_time)

    # --------------------------------------------------------------- failover
    def fail_shard(self, shard_index: int) -> None:
        """Simulate a crash of ``shard_index`` (stops heartbeats and emission).

        Detection and client reassignment happen via the heartbeat monitor
        when one is configured, or immediately via :meth:`force_failover`.
        """
        shard = self._shards[shard_index]
        if shard.crashed:
            return
        shard.crashed = True
        shard.sequencer.halt()

    def force_failover(self, shard_index: int) -> FailoverEvent:
        """Declare ``shard_index`` dead right now and reassign its clients."""
        self.fail_shard(shard_index)
        return self._failover(shard_index)

    def _shard_heartbeat_tick(self, shard_index: int, generation: int = 0) -> None:
        shard = self._shards[shard_index]
        # a tick armed for a previous incarnation must not re-arm: a rejoin
        # starts its own loop, and without the generation guard a pre-crash
        # tick still pending at rejoin time would run a second, permanent
        # heartbeat loop for the shard
        if shard.generation != generation or shard.crashed or not shard.alive:
            return
        shard.last_heartbeat = self.now
        self.call_after(
            self._heartbeat_interval, self._shard_heartbeat_tick, shard_index, generation
        )

    def _monitor_tick(self) -> None:
        for shard in self._shards:
            if shard.alive and self.now - shard.last_heartbeat > self._heartbeat_timeout:
                # a stale shard with nobody to take its clients (total cluster
                # failure) stays degraded rather than aborting the run
                has_survivor = any(
                    other.alive and other.index != shard.index for other in self._shards
                )
                if has_survivor:
                    self._failover(shard.index)
        if any(shard.alive for shard in self._shards):
            self.call_after(self._heartbeat_interval, self._monitor_tick)
        else:
            self._monitor_running = False

    def _failover(self, shard_index: int) -> FailoverEvent:
        shard = self._shards[shard_index]
        if not shard.alive:
            raise ValueError(f"shard {shard_index} already failed over")
        # prefer healthy shards; crashed-but-undetected ones are a last
        # resort (their backlog carries the replay until their own failover)
        survivors = [
            other.index
            for other in self._shards
            if other.alive and not other.crashed and other.index != shard_index
        ]
        if not survivors:
            survivors = [
                other.index for other in self._shards if other.alive and other.index != shard_index
            ]
        if not survivors:
            raise ValueError("cannot fail over the last alive shard")
        shard.crashed = True
        shard.alive = False
        shard.sequencer.halt()

        moved = self._router.drain(shard_index, survivors)
        for client_id, target in moved.items():
            self._shards[target].sequencer.register_client(
                client_id, self._distributions[client_id]
            )

        # the dead shard is never flushed again, so replaying its pending and
        # backlogged items into the survivors cannot double-count them; the
        # replay bypasses the exactly-once gate (the items were already
        # admitted once) but still respects a crashed target's backlog
        replayed = 0
        backlog = shard.backlog
        shard.backlog = []
        for item in list(shard.sequencer.pending_messages) + backlog:
            replayed += int(isinstance(item, TimestampedMessage))
            self._route(item, self.now)

        event = FailoverEvent(
            shard=shard_index,
            detected_at=self.now,
            clients_moved=len(moved),
            messages_replayed=replayed,
        )
        self._failover_events.append(event)
        return event

    @property
    def rejoin_events(self) -> List[RejoinEvent]:
        """Shard rejoins performed so far."""
        return list(self._rejoin_events)

    def rejoin_shard(self, shard_index: int, clients: Sequence[str] = ()) -> RejoinEvent:
        """Bring a failed-over shard back with a fresh sequencer process.

        The crashed incarnation's emitted batches are retired into the
        shard's history (they remain part of the cluster-wide merge); the
        fresh sequencer starts empty and, when ``clients`` are given, those
        clients are reclaimed from their failover owners (new arrivals route
        here; messages already pending on the temporary owner are emitted
        there and ordered by the cross-shard merge).  Heartbeats and — when
        streaming merge is on — the emission subscription are re-armed.
        """
        shard = self._shards[shard_index]
        if shard.alive and not shard.crashed:
            raise ValueError(f"shard {shard_index} is alive; nothing to rejoin")
        if shard.alive and shard.crashed:
            # crashed but not yet detected: complete the failover first so
            # pending and backlog replay onto the survivors, not the fresh
            # process (which never saw them)
            self._failover(shard_index)

        self._retired_engine_stats = self._retired_engine_stats.merge(
            shard.sequencer.engine_stats()
        )
        shard.retired.extend(shard.sequencer.emitted_batches)
        shard.generation += 1

        reclaimed = [client_id for client_id in clients if client_id in self._distributions]
        sequencer = OnlineTommySequencer(
            self._loop,
            {client_id: self._distributions[client_id] for client_id in reclaimed},
            config=self._config,
            known_clients=reclaimed,
            name=f"{self.name}-shard-{shard_index}-gen{shard.generation}",
            use_engine=self._use_engine,
            telemetry=self._telemetry,
            shard_index=shard_index,
        )
        shard.sequencer = sequencer
        shard.backlog = []
        shard.alive = True
        shard.crashed = False
        shard.last_heartbeat = self.now
        for client_id in reclaimed:
            self._router.reassign(client_id, shard_index)
        if self._streaming is not None:
            sequencer.subscribe_emissions(self._emission_observer(shard_index))
        if self._heartbeat_interval is not None:
            self.call_after(
                self._heartbeat_interval,
                self._shard_heartbeat_tick,
                shard_index,
                shard.generation,
            )
            if not self._monitor_running:
                self.call_after(self._heartbeat_interval, self._monitor_tick)
                self._monitor_running = True

        event = RejoinEvent(
            shard=shard_index, rejoined_at=self.now, clients_reclaimed=len(reclaimed)
        )
        self._rejoin_events.append(event)
        return event

    # ---------------------------------------------------------------- results
    def pending_messages(self) -> List[TimestampedMessage]:
        """Messages received by live shards but not yet emitted."""
        pending: List[TimestampedMessage] = []
        for shard in self._shards:
            if shard.alive:
                pending.extend(shard.sequencer.pending_messages)
        return pending

    def flush(self) -> None:
        """Force-emit everything still pending on live shards."""
        for shard in self._shards:
            if shard.alive:
                shard.sequencer.flush()

    def shard_batches(self) -> List[List[SequencedBatch]]:
        """Per-shard emitted batch streams (inputs to the merge).

        A shard that crashed and rejoined contributes its retired history
        followed by the fresh incarnation's emissions — the same stream the
        streaming merger observed live.
        """
        return [
            [emitted.batch for emitted in shard.retired]
            + [emitted.batch for emitted in shard.sequencer.emitted_batches]
            for shard in self._shards
        ]

    def emitted_counts(self) -> List[int]:
        """Number of messages emitted by each shard (all incarnations)."""
        return [
            sum(emitted.batch.size for emitted in shard.retired)
            + sum(emitted.batch.size for emitted in shard.sequencer.emitted_batches)
            for shard in self._shards
        ]

    def engine_stats(self) -> EngineStats:
        """Cluster-wide engine counters: every shard plus the merger."""
        combined = self._retired_engine_stats
        for shard in self._shards:
            combined = combined.merge(shard.sequencer.engine_stats())
        return combined.merge(self._merger.engine_stats)

    def merge(self) -> MergeOutcome:
        """Merge every shard's emitted batches into the cluster-wide order.

        The offline path: recomputes the whole merge from the emitted
        streams — through the hierarchical merger when a tree topology is
        configured (byte-identical to the flat merge, parity-tested).  With
        streaming enabled, :meth:`live_merge` linearises the incrementally
        maintained state instead and is byte-identical.
        """
        if self._tree_merger is not None:
            return self._tree_merger.merge(self.shard_batches())
        return self._merger.merge(self.shard_batches())

    def live_merge(self) -> MergeOutcome:
        """The cluster-wide order from the live streaming merger.

        Every cross-shard batch pair was priced when its later batch was
        emitted, so this only linearises and coalesces maintained state —
        no re-merge of the full history.
        """
        if self._streaming is None:
            raise ValueError("streaming merge is disabled; construct with streaming_merge=True")
        return self._streaming.result()

    def result(self) -> SequencingResult:
        """The merged cluster-wide order as a :class:`SequencingResult`."""
        outcome = self.merge()
        metadata = dict(outcome.result.metadata)
        metadata.update(
            {
                "sequencer": "tommy-cluster",
                "num_shards": self.num_shards,
                "policy": self._router.policy.name,
                "failovers": len(self._failover_events),
                "rejoins": len(self._rejoin_events),
                "duplicates_suppressed": self._gate.duplicates_suppressed,
                "engine": self.engine_stats().as_dict(),
                "learning": self.learning_stats(),
            }
        )
        return SequencingResult(batches=outcome.result.batches, metadata=metadata)

    def emission_latencies(self) -> List[float]:
        """Generation-to-emission latencies across every shard (all incarnations)."""
        latencies: List[float] = []
        for shard in self._shards:
            for emitted in shard.retired:
                latencies.extend(emitted.emission_latencies())
            latencies.extend(shard.sequencer.emission_latencies())
        return latencies

    def emitted_batches(self) -> List[EmittedBatch]:
        """All per-shard emitted batches (unmerged), shard-major order."""
        batches: List[EmittedBatch] = []
        for shard in self._shards:
            batches.extend(shard.retired)
            batches.extend(shard.sequencer.emitted_batches)
        return batches

    def observability_report(self) -> Dict[str, object]:
        """One unified snapshot of every stats surface the cluster owns.

        Folds the engine counters, learning accounting, event-loop stats and
        cluster topology into a single nested dictionary; with telemetry
        injected, the full metrics-registry snapshot (including any attached
        chaos/refresh sources) rides along under ``"telemetry"``.
        """
        report: Dict[str, object] = {
            "cluster": {
                "num_shards": self.num_shards,
                "alive_shards": self.alive_shards,
                "policy": self._router.policy.name,
                "failovers": len(self._failover_events),
                "rejoins": len(self._rejoin_events),
                "duplicates_suppressed": self._gate.duplicates_suppressed,
                # exactly-once gate memory: with delivery-horizon pruning
                # (the default) the retained set is bounded by the per-client
                # in-flight window; keys below a client's delivered-sequence
                # horizon are released and re-deliveries in the pruned region
                # are rejected by the horizon comparison alone.  The warning
                # flag now only trips when pruning is off or ineffective
                # (no usable per-client sequence numbers)
                "dedupe_seen_keys": self._gate.seen_key_count,
                "dedupe_keys_pruned": self._gate.keys_pruned,
                "dedupe_growth_warning": (
                    self._gate.enabled
                    and self._gate.seen_key_count > self.DEDUPE_WARN_THRESHOLD
                ),
                "emitted_counts": self.emitted_counts(),
            },
            "engine": self.engine_stats().as_dict(),
            "learning": self.learning_stats(),
            # scheduler stats when the substrate exposes them (the sim loop
            # does; a protocol-only scheduler may not)
            "loop": self._loop.as_dict() if hasattr(self._loop, "as_dict") else {},
            "merge": self.merge_report(),
        }
        if self._obs.enabled and self._obs.registry is not None:
            report["telemetry"] = self._obs.registry.snapshot()
        return report
