"""Sharded fair-sequencing cluster.

Scales the single :class:`~repro.core.online.OnlineTommySequencer` out to a
cluster: a :class:`ShardRouter` partitions clients over shards (hash,
region-affine, or load-aware), a :class:`ShardedSequencer` runs one online
sequencer per shard on a shared event loop with heartbeat-driven failover,
and a :class:`CrossShardMerger` recovers one cluster-wide fair order by
applying the paper's probabilistic machinery at batch granularity across
shard boundaries.  For wide clusters a :class:`MergeTopology` arranges the
shards as leaves of a log-depth tree and :class:`HierarchicalMerger` prices
every cross-shard pair at its lowest common ancestor — byte-identical
output, band-local kernel work.
"""

from repro.cluster.harness import ClusterTransport, replay_scenario
from repro.cluster.intake import IntakeDedupeGate
from repro.cluster.merge import CertaintyWindows, CrossShardMerger, MergeOutcome, StreamingMerger
from repro.cluster.router import (
    HashSharding,
    LoadAwareSharding,
    RegionAffineSharding,
    ShardRouter,
    ShardingPolicy,
    stable_shard_hash,
)
from repro.cluster.sharded import FailoverEvent, RejoinEvent, ShardedSequencer, ShardState
from repro.cluster.tree import HierarchicalMerger, MergeTopology, TreeNode

__all__ = [
    "ShardingPolicy",
    "HashSharding",
    "RegionAffineSharding",
    "LoadAwareSharding",
    "ShardRouter",
    "stable_shard_hash",
    "CrossShardMerger",
    "StreamingMerger",
    "CertaintyWindows",
    "MergeOutcome",
    "ShardedSequencer",
    "ShardState",
    "FailoverEvent",
    "RejoinEvent",
    "MergeTopology",
    "TreeNode",
    "HierarchicalMerger",
    "ClusterTransport",
    "replay_scenario",
    "IntakeDedupeGate",
]
