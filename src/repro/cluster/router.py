"""Client-to-shard assignment: sharding policies and the routing table.

A production deployment of the fair sequencer cannot funnel every client
through one process; clients are partitioned across shards, each running its
own :class:`~repro.core.online.OnlineTommySequencer`.  Three assignment
policies are provided:

* :class:`HashSharding` — stable content hash of the client id (uniform,
  stateless, survives restarts).
* :class:`RegionAffineSharding` — clients of the same region land on the
  same shard, so the intra-shard clock-error spread (and therefore batch
  granularity) stays small; regions are dealt round-robin over shards.
* :class:`LoadAwareSharding` — each new client joins the currently
  least-loaded shard (balanced even under skewed id spaces).

The :class:`ShardRouter` owns the live assignment table and supports the
reassignment primitives shard failover needs.
"""

from __future__ import annotations

import abc
import hashlib
from typing import Dict, List, Mapping, Optional, Sequence, Tuple


def stable_shard_hash(token: str) -> int:
    """Deterministic, process-independent hash of ``token``.

    Python's builtin ``hash`` is salted per process; routing must be
    reproducible across runs, so a truncated SHA-256 is used instead (the
    same construction as :class:`repro.simulation.RandomSource`).
    """
    digest = hashlib.sha256(token.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


class ShardingPolicy(abc.ABC):
    """Decides which shard a newly seen client is assigned to."""

    #: short identifier used in experiment reports
    name: str = "abstract"

    @abc.abstractmethod
    def assign(self, client_id: str, num_shards: int, loads: Sequence[int]) -> int:
        """Return the shard index in ``[0, num_shards)`` for ``client_id``.

        ``loads`` is the current number of clients per shard (load-aware
        policies read it; stateless policies ignore it).
        """


class HashSharding(ShardingPolicy):
    """Uniform stateless assignment by stable hash of the client id."""

    name = "hash"

    def assign(self, client_id: str, num_shards: int, loads: Sequence[int]) -> int:
        return stable_shard_hash(client_id) % num_shards


class RegionAffineSharding(ShardingPolicy):
    """Keep each region's clients together; deal regions over shards.

    Distinct regions (sorted by name for determinism) are assigned
    round-robin to shards, so co-located clients — whose clock errors are
    similar and whose pairwise orderings are the hardest — are sequenced by
    the same shard and never need a cross-shard merge.  Clients without a
    known region fall back to hash assignment.
    """

    name = "region"

    def __init__(self, region_of: Mapping[str, str]) -> None:
        self._region_of = dict(region_of)
        self._region_rank = {
            region: rank for rank, region in enumerate(sorted(set(self._region_of.values())))
        }

    def assign(self, client_id: str, num_shards: int, loads: Sequence[int]) -> int:
        region = self._region_of.get(client_id)
        if region is None:
            return stable_shard_hash(client_id) % num_shards
        return self._region_rank[region] % num_shards

    def region_map(self, num_shards: int) -> Dict[int, Tuple[str, ...]]:
        """The *actual* shard → regions assignment under round-robin dealing.

        With more regions than shards several regions share a shard — a
        consumer (e.g. the region-affine merge-tree builder) must not assume
        region-pure shards.  Regions are listed per shard in rank order.
        """
        assignment: Dict[int, List[str]] = {}
        for region in sorted(self._region_rank, key=self._region_rank.__getitem__):
            assignment.setdefault(self._region_rank[region] % num_shards, []).append(region)
        return {shard: tuple(regions) for shard, regions in assignment.items()}


class LoadAwareSharding(ShardingPolicy):
    """Assign each new client to the least-loaded shard (ties: lowest index)."""

    name = "load"

    def assign(self, client_id: str, num_shards: int, loads: Sequence[int]) -> int:
        return min(range(num_shards), key=lambda shard: (loads[shard], shard))


class ShardRouter:
    """The cluster's live client-to-shard routing table.

    Assignment is sticky: once a client is routed, subsequent lookups return
    the same shard until :meth:`reassign` or :meth:`drain` moves it (the
    failover path).
    """

    def __init__(self, num_shards: int, policy: Optional[ShardingPolicy] = None) -> None:
        if num_shards < 1:
            raise ValueError(f"num_shards must be at least 1, got {num_shards!r}")
        self._num_shards = int(num_shards)
        self._policy = policy if policy is not None else HashSharding()
        self._shard_of: Dict[str, int] = {}
        self._loads = [0] * self._num_shards
        self._reassignments = 0

    # ------------------------------------------------------------- properties
    @property
    def num_shards(self) -> int:
        """Number of shards routed over."""
        return self._num_shards

    @property
    def policy(self) -> ShardingPolicy:
        """The assignment policy for newly seen clients."""
        return self._policy

    @property
    def loads(self) -> List[int]:
        """Current number of clients assigned to each shard."""
        return list(self._loads)

    @property
    def reassignments(self) -> int:
        """Number of clients moved since construction (failover churn)."""
        return self._reassignments

    @property
    def client_ids(self) -> List[str]:
        """All routed client ids (sorted)."""
        return sorted(self._shard_of)

    def region_map(self) -> Dict[int, Tuple[str, ...]]:
        """Shard → regions served, as the policy actually deals them.

        Delegates to the policy's ``region_map`` when it has one
        (:class:`RegionAffineSharding`); policies without a region notion
        yield every shard mapped to an empty tuple — consumers (the
        region-affine merge-tree builder) then fall back to index order.
        """
        policy_map = getattr(self._policy, "region_map", None)
        regions: Dict[int, Tuple[str, ...]] = dict.fromkeys(range(self._num_shards), ())
        if callable(policy_map):
            regions.update(policy_map(self._num_shards))
        return regions

    # ----------------------------------------------------------------- routing
    def assign(self, client_id: str) -> int:
        """Route ``client_id`` (idempotent) and return its shard index."""
        if client_id in self._shard_of:
            return self._shard_of[client_id]
        shard = self._policy.assign(client_id, self._num_shards, self._loads)
        if not 0 <= shard < self._num_shards:
            raise ValueError(
                f"policy {self._policy.name!r} returned shard {shard} "
                f"outside [0, {self._num_shards})"
            )
        self._shard_of[client_id] = shard
        self._loads[shard] += 1
        return shard

    def shard_of(self, client_id: str) -> int:
        """The shard currently owning ``client_id`` (assigning if unseen)."""
        return self.assign(client_id)

    def is_routed(self, client_id: str) -> bool:
        """True when ``client_id`` already has a sticky assignment."""
        return client_id in self._shard_of

    def clients_of(self, shard: int) -> List[str]:
        """Client ids currently owned by ``shard`` (sorted)."""
        self._check_shard(shard)
        return sorted(client for client, owner in self._shard_of.items() if owner == shard)

    def reassign(self, client_id: str, shard: int) -> None:
        """Move an already-routed client to ``shard``."""
        self._check_shard(shard)
        if client_id not in self._shard_of:
            raise KeyError(f"client {client_id!r} is not routed")
        previous = self._shard_of[client_id]
        if previous == shard:
            return
        self._loads[previous] -= 1
        self._loads[shard] += 1
        self._shard_of[client_id] = shard
        self._reassignments += 1

    def drain(self, shard: int, survivors: Optional[Sequence[int]] = None) -> Dict[str, int]:
        """Move every client off ``shard`` onto the least-loaded survivors.

        Returns the mapping ``client_id -> new shard``.  ``survivors``
        defaults to every other shard.  This is the failover primitive: the
        dead shard's clients are spread to keep the surviving shards
        balanced.
        """
        self._check_shard(shard)
        if survivors is None:
            survivors = [index for index in range(self._num_shards) if index != shard]
        survivors = [int(index) for index in survivors]
        if not survivors or shard in survivors:
            raise ValueError("drain needs at least one survivor distinct from the drained shard")
        moved: Dict[str, int] = {}
        for client_id in self.clients_of(shard):
            target = min(survivors, key=lambda index: (self._loads[index], index))
            self.reassign(client_id, target)
            moved[client_id] = target
        return moved

    def _check_shard(self, shard: int) -> None:
        if not 0 <= shard < self._num_shards:
            raise ValueError(f"shard {shard} outside [0, {self._num_shards})")
