"""Cluster wiring: per-shard transport fan-in and scenario replay.

Two ways to drive a :class:`~repro.cluster.sharded.ShardedSequencer`:

* :class:`ClusterTransport` — the live path: one
  :class:`~repro.network.transport.Transport` per shard on the shared loop;
  every client endpoint (clock, channel, heartbeats) is created on its owner
  shard's transport, and each shard's sequencer endpoint fans arrivals into
  that shard via :meth:`ShardedSequencer.receive_at` (so failover rerouting
  still applies).
* :func:`replay_scenario` — the evaluation path: schedule an offline
  :class:`~repro.workloads.scenario.Scenario`'s messages as arrival events
  at their ground-truth generation times.  The target only needs a
  ``receive(item, arrival_time)`` method, so the same replay drives a bare
  :class:`~repro.core.online.OnlineTommySequencer` and a cluster identically
  — which is what makes the 1-shard equivalence property testable.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Protocol, Union

import numpy as np

from repro.clocks.local import LocalClock
from repro.cluster.sharded import ShardedSequencer
from repro.network.link import DelayModel
from repro.network.message import Heartbeat, TimestampedMessage
from repro.network.transport import ClientEndpoint, Transport
from repro.obs.telemetry import Telemetry
from repro.simulation.event_loop import EventLoop
from repro.simulation.trace import TraceRecorder

if TYPE_CHECKING:  # imported lazily: workloads.chaos drives this harness
    from repro.workloads.scenario import Scenario


class Receiver(Protocol):
    """Anything message arrivals can be fanned into."""

    def receive(
        self, item: Union[TimestampedMessage, Heartbeat], arrival_time: Optional[float] = None
    ) -> None: ...


class ClusterTransport:
    """One Transport per shard, each fanning into its shard's sequencer."""

    def __init__(
        self,
        loop: EventLoop,
        cluster: ShardedSequencer,
        rng_factory: Callable[[str], np.random.Generator],
        trace: Optional[TraceRecorder] = None,
        coalesce_bursts: bool = False,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self._loop = loop
        self._cluster = cluster
        self._transports: List[Transport] = []
        for shard_index in range(cluster.num_shards):
            transport = Transport(
                loop, rng_factory, trace, coalesce_bursts=coalesce_bursts, telemetry=telemetry
            )
            transport.sequencer.on_arrival(self._fan_in(shard_index))
            if coalesce_bursts:
                # same-instant deliveries reach the shard as one burst: one
                # engine block append and one emission check instead of k
                transport.sequencer.on_burst(self._fan_in_burst(shard_index))
            self._transports.append(transport)

    def _fan_in(self, shard_index: int):
        def deliver(item: Union[TimestampedMessage, Heartbeat], arrival_time: float) -> None:
            self._cluster.receive_at(shard_index, item, arrival_time)

        return deliver

    def _fan_in_burst(self, shard_index: int):
        def deliver(
            items: List[Union[TimestampedMessage, Heartbeat]], arrival_time: float
        ) -> None:
            self._cluster.receive_many_at(shard_index, items, arrival_time)

        return deliver

    @property
    def cluster(self) -> ShardedSequencer:
        """The cluster being fed."""
        return self._cluster

    def transport_of(self, shard_index: int) -> Transport:
        """The per-shard transport carrying that shard's client traffic."""
        return self._transports[shard_index]

    def add_client(
        self,
        client_id: str,
        clock: LocalClock,
        delay_model: Optional[DelayModel] = None,
        ordered: bool = True,
        heartbeat_interval: Optional[float] = None,
        drop_probability: float = 0.0,
    ) -> ClientEndpoint:
        """Create a client endpoint on its owner shard's transport."""
        shard = self._cluster.router.shard_of(client_id)
        return self._transports[shard].add_client(
            client_id,
            clock,
            delay_model=delay_model,
            ordered=ordered,
            heartbeat_interval=heartbeat_interval,
            drop_probability=drop_probability,
        )

    def clients(self) -> Dict[str, ClientEndpoint]:
        """All client endpoints across every shard transport."""
        merged: Dict[str, ClientEndpoint] = {}
        for transport in self._transports:
            merged.update(transport.clients)
        return merged

    def install_chaos(self, controller) -> int:
        """Install chaos fault hooks on every shard transport's channels.

        Delegates to :meth:`repro.network.transport.Transport.install_chaos`
        per shard and attaches the cluster to the controller so shard-crash
        faults can act on it.  Returns the number of channels hooked.
        """
        controller.attach_cluster(self._cluster)
        return sum(transport.install_chaos(controller) for transport in self._transports)


def replay_scenario(
    loop: EventLoop,
    target: Receiver,
    scenario: Scenario,
    delay: float = 0.0,
    final_heartbeats: bool = True,
    heartbeat_slack: float = 1e-3,
) -> List[TimestampedMessage]:
    """Schedule ``scenario``'s messages as arrivals on ``loop``.

    Each message arrives at ``true_time + delay``.  When
    ``final_heartbeats`` is set, every client additionally sends one closing
    heartbeat timestamped past the latest reported timestamp, so the
    heartbeat completeness rule (Q2) lets the sequencer emit everything it
    can before the caller's final flush.

    Returns the replayed messages in arrival order.
    """
    if delay < 0:
        raise ValueError("delay must be non-negative")
    messages = scenario.messages_by_true_time()
    for message in messages:
        loop.schedule_at(max(message.true_time + delay, loop.now), target.receive, message)
    if final_heartbeats and messages:
        end_time = max(message.true_time for message in messages) + delay + heartbeat_slack
        beacon = max(message.timestamp for message in messages) + heartbeat_slack
        for client_id in sorted(scenario.client_ids):
            heartbeat = Heartbeat(client_id=client_id, timestamp=beacon, true_time=end_time)
            loop.schedule_at(end_time, target.receive, heartbeat)
    return messages
