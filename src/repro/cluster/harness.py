"""Cluster wiring: per-shard transport fan-in and scenario replay.

Two ways to drive a :class:`~repro.cluster.sharded.ShardedSequencer`:

* :class:`ClusterTransport` — the live path: one
  :class:`~repro.network.transport.Transport` per shard on the shared loop;
  every client endpoint (clock, channel, heartbeats) is created on its owner
  shard's transport, and each shard's sequencer endpoint fans arrivals into
  that shard via :meth:`ShardedSequencer.receive_at` (so failover rerouting
  still applies).
* :func:`replay_scenario` / :func:`replay_messages` — the evaluation path:
  schedule an offline :class:`~repro.workloads.scenario.Scenario`'s messages
  as arrival events at their ground-truth generation times.  The target only
  needs a ``receive(item, arrival_time)`` method, so the same replay drives a
  bare :class:`~repro.core.online.OnlineTommySequencer` and a cluster
  identically — which is what makes the 1-shard equivalence property testable,
  and what lets the real-process backend replay a single shard's slice of a
  workload bit-identically to the sim cluster (:mod:`repro.runtime.procs`
  passes the *global* closing-heartbeat instant into ``heartbeat_time`` /
  ``heartbeat_timestamp`` so every worker closes at the same horizon).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional, Protocol, Union

import numpy as np

from repro.clocks.local import LocalClock
from repro.cluster.sharded import ShardedSequencer
from repro.network.link import DelayModel
from repro.network.message import Heartbeat, TimestampedMessage
from repro.network.transport import ClientEndpoint, Transport
from repro.obs.telemetry import Telemetry
from repro.runtime.base import Scheduler, clock_of
from repro.simulation.trace import TraceRecorder

if TYPE_CHECKING:  # imported lazily: workloads.chaos drives this harness
    from repro.workloads.scenario import Scenario


class Receiver(Protocol):
    """Anything message arrivals can be fanned into."""

    def receive(
        self, item: Union[TimestampedMessage, Heartbeat], arrival_time: Optional[float] = None
    ) -> None: ...


class ClusterTransport:
    """One Transport per shard, each fanning into its shard's sequencer."""

    def __init__(
        self,
        loop: Scheduler,
        cluster: ShardedSequencer,
        rng_factory: Callable[[str], np.random.Generator],
        trace: Optional[TraceRecorder] = None,
        coalesce_bursts: bool = False,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self._loop = loop
        self._cluster = cluster
        self._transports: List[Transport] = []
        for shard_index in range(cluster.num_shards):
            transport = Transport(
                loop, rng_factory, trace, coalesce_bursts=coalesce_bursts, telemetry=telemetry
            )
            transport.sequencer.on_arrival(self._fan_in(shard_index))
            if coalesce_bursts:
                # same-instant deliveries reach the shard as one burst: one
                # engine block append and one emission check instead of k
                transport.sequencer.on_burst(self._fan_in_burst(shard_index))
            self._transports.append(transport)

    def _fan_in(self, shard_index: int):
        def deliver(item: Union[TimestampedMessage, Heartbeat], arrival_time: float) -> None:
            self._cluster.receive_at(shard_index, item, arrival_time)

        return deliver

    def _fan_in_burst(self, shard_index: int):
        def deliver(
            items: List[Union[TimestampedMessage, Heartbeat]], arrival_time: float
        ) -> None:
            self._cluster.receive_many_at(shard_index, items, arrival_time)

        return deliver

    @property
    def cluster(self) -> ShardedSequencer:
        """The cluster being fed."""
        return self._cluster

    def transport_of(self, shard_index: int) -> Transport:
        """The per-shard transport carrying that shard's client traffic."""
        return self._transports[shard_index]

    def add_client(
        self,
        client_id: str,
        clock: LocalClock,
        delay_model: Optional[DelayModel] = None,
        ordered: bool = True,
        heartbeat_interval: Optional[float] = None,
        drop_probability: float = 0.0,
    ) -> ClientEndpoint:
        """Create a client endpoint on its owner shard's transport."""
        shard = self._cluster.router.shard_of(client_id)
        return self._transports[shard].add_client(
            client_id,
            clock,
            delay_model=delay_model,
            ordered=ordered,
            heartbeat_interval=heartbeat_interval,
            drop_probability=drop_probability,
        )

    def clients(self) -> Dict[str, ClientEndpoint]:
        """All client endpoints across every shard transport."""
        merged: Dict[str, ClientEndpoint] = {}
        for transport in self._transports:
            merged.update(transport.clients)
        return merged

    def install_chaos(self, controller) -> int:
        """Install chaos fault hooks on every shard transport's channels.

        Delegates to :meth:`repro.network.transport.Transport.install_chaos`
        per shard and attaches the cluster to the controller so shard-crash
        faults can act on it.  Returns the number of channels hooked.
        """
        controller.attach_cluster(self._cluster)
        return sum(transport.install_chaos(controller) for transport in self._transports)


def replay_messages(
    scheduler: Scheduler,
    target: Receiver,
    messages: List[TimestampedMessage],
    client_ids: Iterable[str],
    delay: float = 0.0,
    heartbeat_time: Optional[float] = None,
    heartbeat_timestamp: Optional[float] = None,
) -> List[TimestampedMessage]:
    """Schedule pre-sorted ``messages`` as arrivals on ``scheduler``.

    Each message arrives at ``true_time + delay``.  When ``heartbeat_time``
    and ``heartbeat_timestamp`` are given, every client in ``client_ids``
    additionally sends one closing heartbeat at that instant with that
    beacon timestamp, so the heartbeat completeness rule (Q2) lets the
    sequencer emit everything it can before the caller's final flush.

    This is the replay primitive both execution backends share: the sim
    backend replays a whole scenario; the real-process backend replays one
    shard's slice per worker while pinning the heartbeat instant/beacon to
    the *global* values so the completeness horizon closes identically.

    Returns the replayed messages in arrival order.
    """
    if delay < 0:
        raise ValueError("delay must be non-negative")
    clock = clock_of(scheduler)
    for message in messages:
        scheduler.schedule_at(
            max(message.true_time + delay, clock.now()), target.receive, message
        )
    if heartbeat_time is not None and heartbeat_timestamp is not None:
        for client_id in sorted(client_ids):
            heartbeat = Heartbeat(
                client_id=client_id, timestamp=heartbeat_timestamp, true_time=heartbeat_time
            )
            scheduler.schedule_at(heartbeat_time, target.receive, heartbeat)
    return messages


def replay_scenario(
    loop: Scheduler,
    target: Receiver,
    scenario: Scenario,
    delay: float = 0.0,
    final_heartbeats: bool = True,
    heartbeat_slack: float = 1e-3,
) -> List[TimestampedMessage]:
    """Schedule ``scenario``'s messages as arrivals on ``loop``.

    Convenience wrapper over :func:`replay_messages` that derives the
    closing-heartbeat instant and beacon from the scenario itself.

    Returns the replayed messages in arrival order.
    """
    messages = scenario.messages_by_true_time()
    heartbeat_time: Optional[float] = None
    heartbeat_timestamp: Optional[float] = None
    if final_heartbeats and messages:
        heartbeat_time = (
            max(message.true_time for message in messages) + delay + heartbeat_slack
        )
        heartbeat_timestamp = max(message.timestamp for message in messages) + heartbeat_slack
    return replay_messages(
        loop,
        target,
        messages,
        scenario.client_ids,
        delay=delay,
        heartbeat_time=heartbeat_time,
        heartbeat_timestamp=heartbeat_timestamp,
    )
