"""Chaos sweep: fault family × intensity × shard count scenario matrix.

Every cell runs the live chaos workload (:mod:`repro.workloads.chaos`) with
one named fault armed and reports RAS degradation against the fault-free
control at the same shard count, the failover/replay/loss accounting, and
the streaming-vs-offline merge parity flag — the degraded-conditions
evaluation the paper's fairness claims need to survive.  All rows are
deterministic for a fixed seed (wall-clock measurements are deliberately
excluded), so ``python -m repro.cli chaos`` emits identical reports across
machines and reruns.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.workloads.chaos import (
    FAULT_NAMES,
    ChaosReport,
    ChaosSettings,
    run_chaos_scenario,
)

#: Fault families swept by default — every named fault, control first.
DEFAULT_FAULTS = FAULT_NAMES


def chaos_row(report: ChaosReport, control: Optional[ChaosReport] = None) -> Dict[str, object]:
    """One sweep row: the report plus RAS degradation vs the control."""
    row = report.as_row()
    if control is not None:
        row["ras_delta"] = round(report.ras_normalized - control.ras_normalized, 4)
    return row


def run_chaos_sweep(
    faults: Sequence[str] = DEFAULT_FAULTS,
    intensities: Sequence[float] = (1.0,),
    shard_counts: Sequence[int] = (4,),
    num_clients: int = 24,
    messages_per_client: int = 4,
    seed: int = 7,
    streaming: bool = True,
    learning: bool = True,
) -> List[Dict[str, object]]:
    """Run the fault × intensity × shards matrix and return report rows.

    The fault-free control runs once per shard count (it has no intensity
    axis) and every faulted row carries ``ras_delta`` relative to it.
    Unknown fault names raise; the ``crash`` fault is skipped at one shard
    (there is nowhere to fail over).
    """
    unknown = sorted(set(faults) - set(FAULT_NAMES))
    if unknown:
        raise ValueError(f"unknown fault families {unknown!r}; expected from {FAULT_NAMES}")
    rows: List[Dict[str, object]] = []
    for num_shards in shard_counts:
        settings = ChaosSettings(
            num_clients=num_clients,
            num_shards=num_shards,
            messages_per_client=messages_per_client,
            seed=seed,
        )
        control = run_chaos_scenario(
            fault="none", settings=settings, streaming=streaming, learning=learning
        )
        for fault in faults:
            if fault == "none":
                rows.append(chaos_row(control, control))
                continue
            if fault == "crash" and num_shards < 2:
                continue
            for intensity in intensities:
                report = run_chaos_scenario(
                    fault=fault,
                    intensity=intensity,
                    settings=settings,
                    streaming=streaming,
                    learning=learning,
                )
                rows.append(chaos_row(report, control))
    return rows
