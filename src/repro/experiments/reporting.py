"""Plain-text and CSV rendering of experiment result rows."""

from __future__ import annotations

import io
from typing import Dict, List, Sequence


def format_table(rows: Sequence[Dict[str, object]], title: str = "") -> str:
    """Render dictionaries as an aligned, monospaced table.

    All rows must share the same keys (the first row's key order is used).
    """
    if not rows:
        return f"{title}\n(no rows)\n" if title else "(no rows)\n"
    headers = list(rows[0].keys())
    for row in rows:
        if list(row.keys()) != headers:
            raise ValueError("all rows must have the same keys in the same order")
    columns = {header: [str(row[header]) for row in rows] for header in headers}
    widths = {
        header: max(len(header), *(len(value) for value in columns[header]))
        for header in headers
    }

    def render_row(values: Sequence[str]) -> str:
        return "  ".join(value.ljust(widths[header]) for header, value in zip(headers, values))

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(render_row(headers))
    lines.append(render_row(["-" * widths[header] for header in headers]))
    for row in rows:
        lines.append(render_row([str(row[header]) for header in headers]))
    return "\n".join(lines) + "\n"


def rows_to_csv(rows: Sequence[Dict[str, object]]) -> str:
    """Render dictionaries as CSV text (header + one line per row)."""
    if not rows:
        return ""
    headers = list(rows[0].keys())
    buffer = io.StringIO()
    buffer.write(",".join(headers) + "\n")
    for row in rows:
        if list(row.keys()) != headers:
            raise ValueError("all rows must have the same keys in the same order")
        buffer.write(",".join(str(row[header]) for header in headers) + "\n")
    return buffer.getvalue()
