"""Ablation sweeps called out in DESIGN.md.

Each function returns a list of flat row dictionaries ready for
:func:`repro.experiments.reporting.format_table`, so the benchmark harness
and EXPERIMENTS.md generation share one code path.
"""

from __future__ import annotations

import time
from typing import Dict, List, Sequence

import numpy as np

from repro.core.config import TommyConfig
from repro.core.sequencer import TommySequencer
from repro.distributions.mixtures import MixtureDistribution
from repro.distributions.parametric import (
    GaussianDistribution,
    LaplaceDistribution,
    ShiftedLogNormalDistribution,
)
from repro.experiments.online_runner import OnlineExperimentSettings, run_online_experiment
from repro.experiments.runner import evaluate_result
from repro.sequencers.fifo import FifoSequencer
from repro.sequencers.truetime import TrueTimeSequencer
from repro.sequencers.wfo import WaitsForOneSequencer
from repro.sync.learner import OffsetDistributionLearner
from repro.workloads.arrivals import BurstArrivals, UniformGapArrivals
from repro.workloads.scenario import Scenario, ScenarioConfig, build_scenario


def _default_scenario(
    num_clients: int = 60,
    gap: float = 10.0,
    clock_std: float = 40.0,
    messages_per_client: int = 1,
    seed: int = 3,
) -> Scenario:
    def factory(client_index: int, rng: np.random.Generator) -> GaussianDistribution:
        sigma = float(rng.uniform(0.5 * clock_std, 1.5 * clock_std)) if clock_std > 0 else 1e-9
        return GaussianDistribution(float(rng.normal(0.0, clock_std * 0.1)), max(sigma, 1e-9))

    return build_scenario(
        ScenarioConfig(
            num_clients=num_clients,
            arrivals=UniformGapArrivals(
                messages_per_client=messages_per_client, gap=gap, jitter_fraction=0.2
            ),
            distribution_factory=factory,
            seed=seed,
        )
    )


# --------------------------------------------------------------------- ABL-THRESH
def run_threshold_sweep(
    thresholds: Sequence[float] = (0.55, 0.65, 0.75, 0.85, 0.95),
    num_clients: int = 60,
    gap: float = 10.0,
    clock_std: float = 40.0,
    seed: int = 3,
) -> List[Dict[str, object]]:
    """§3.4 trade-off: batching threshold vs RAS and batch granularity."""
    scenario = _default_scenario(num_clients=num_clients, gap=gap, clock_std=clock_std, seed=seed)
    messages = list(scenario.messages)
    rows: List[Dict[str, object]] = []
    for threshold in thresholds:
        sequencer = TommySequencer(
            client_distributions=scenario.client_distributions,
            config=TommyConfig(threshold=threshold),
        )
        comparison = evaluate_result(f"tommy@{threshold}", sequencer.sequence(messages), messages)
        row = comparison.as_row()
        row["threshold"] = threshold
        rows.append(row)
    return rows


# ---------------------------------------------------------------------- ABL-PSAFE
def run_psafe_sweep(
    p_safe_values: Sequence[float] = (0.9, 0.99, 0.999, 0.9999),
    num_clients: int = 8,
    seed: int = 11,
) -> List[Dict[str, object]]:
    """§3.5 trade-off: p_safe vs emission latency and fairness confidence."""
    rows: List[Dict[str, object]] = []
    for p_safe in p_safe_values:
        settings = OnlineExperimentSettings(
            num_clients=num_clients,
            config=TommyConfig(p_safe=p_safe, completeness_mode="heartbeat"),
            seed=seed,
        )
        outcome = run_online_experiment(settings)
        row = outcome.as_row()
        row["p_safe"] = p_safe
        rows.append(row)
    return rows


# ----------------------------------------------------------------------- ABL-DIST
def run_distribution_ablation(
    num_clients: int = 40,
    gap: float = 10.0,
    clock_std: float = 40.0,
    seed: int = 5,
) -> List[Dict[str, object]]:
    """§3.3: Gaussian closed form vs FFT convolution on non-Gaussian offsets."""

    def gaussian_factory(index: int, rng: np.random.Generator) -> GaussianDistribution:
        return GaussianDistribution(0.0, max(float(rng.uniform(0.5, 1.5)) * clock_std, 1e-9))

    def skewed_factory(index: int, rng: np.random.Generator):
        sigma = max(float(rng.uniform(0.5, 1.5)) * clock_std, 1e-9)
        return ShiftedLogNormalDistribution(shift=-sigma, mu=float(np.log(sigma)), sigma=0.6)

    def mixture_factory(index: int, rng: np.random.Generator):
        sigma = max(float(rng.uniform(0.5, 1.5)) * clock_std, 1e-9)
        return MixtureDistribution(
            [
                GaussianDistribution(-0.5 * sigma, 0.4 * sigma),
                LaplaceDistribution(0.8 * sigma, 0.3 * sigma),
            ],
            [0.7, 0.3],
        )

    families = {
        "gaussian/closed-form": (gaussian_factory, "auto"),
        "gaussian/fft": (gaussian_factory, "fft"),
        "lognormal/fft": (skewed_factory, "fft"),
        "mixture/fft": (mixture_factory, "fft"),
    }
    rows: List[Dict[str, object]] = []
    for label, (factory, method) in families.items():
        scenario = build_scenario(
            ScenarioConfig(
                num_clients=num_clients,
                arrivals=UniformGapArrivals(messages_per_client=1, gap=gap, jitter_fraction=0.2),
                distribution_factory=factory,
                seed=seed,
            )
        )
        messages = list(scenario.messages)
        sequencer = TommySequencer(
            client_distributions=scenario.client_distributions,
            config=TommyConfig(probability_method=method, convolution_points=1024),
        )
        start = time.perf_counter()
        result = sequencer.sequence(messages)
        elapsed = time.perf_counter() - start
        comparison = evaluate_result(label, result, messages)
        row = comparison.as_row()
        row["family"] = label
        row["method"] = method
        row["sequencing_seconds"] = round(elapsed, 4)
        rows.append(row)
    return rows


# ---------------------------------------------------------------------- ABL-LEARN
def run_learning_ablation(
    probe_counts: Sequence[int] = (16, 64, 256),
    num_clients: int = 40,
    gap: float = 15.0,
    clock_std: float = 10.0,
    seed: int = 9,
) -> List[Dict[str, object]]:
    """§5: seeded (ground truth) vs probe-learned offset distributions.

    For each probe budget, every client's Gaussian error distribution is
    re-estimated from that many noisy offset observations and Tommy is run
    with the estimates; the row for ``probes = 0`` is the seeded upper bound
    the paper reports.
    """
    scenario = _default_scenario(num_clients=num_clients, gap=gap, clock_std=clock_std, seed=seed)
    messages = list(scenario.messages)
    truth = scenario.client_distributions
    rng = np.random.default_rng(seed)

    rows: List[Dict[str, object]] = []
    seeded = TommySequencer(client_distributions=truth, config=TommyConfig())
    row = evaluate_result("seeded", seeded.sequence(messages), messages).as_row()
    row["probes"] = 0
    rows.append(row)

    for probes in probe_counts:
        learned = {}
        for client_id, distribution in truth.items():
            learner = OffsetDistributionLearner(window=max(probes, 2), method="gaussian")
            samples = distribution.sample(rng, size=probes)
            for sample in np.atleast_1d(samples):
                learner.observe_offset(float(sample))
            learned[client_id] = learner.estimate().distribution
        sequencer = TommySequencer(client_distributions=learned, config=TommyConfig())
        row = evaluate_result(f"learned@{probes}", sequencer.sequence(messages), messages).as_row()
        row["probes"] = probes
        rows.append(row)
    return rows


# ---------------------------------------------------------------------- ABL-SCALE
def run_scaling_sweep(
    client_counts: Sequence[int] = (10, 25, 50, 100),
    gap: float = 10.0,
    clock_std: float = 40.0,
    seed: int = 13,
) -> List[Dict[str, object]]:
    """Sequencer cost and fairness as the number of clients grows."""
    rows: List[Dict[str, object]] = []
    for num_clients in client_counts:
        scenario = _default_scenario(
            num_clients=num_clients, gap=gap, clock_std=clock_std, seed=seed
        )
        messages = list(scenario.messages)
        sequencer = TommySequencer(
            client_distributions=scenario.client_distributions, config=TommyConfig()
        )
        start = time.perf_counter()
        result = sequencer.sequence(messages)
        elapsed = time.perf_counter() - start
        row = evaluate_result(f"tommy@{num_clients}", result, messages).as_row()
        row["clients"] = num_clients
        row["sequencing_seconds"] = round(elapsed, 4)
        rows.append(row)
    return rows


# ----------------------------------------------------------------------- ABL-BASE
def run_baseline_comparison(
    num_clients: int = 50,
    clock_std: float = 0.0001,
    network_jitter: float = 0.0015,
    seed: int = 17,
) -> List[Dict[str, object]]:
    """Burst workload comparison: FIFO vs WFO vs TrueTime vs Tommy (Figures 2–4).

    The burst workload (all clients reacting to one broadcast) is where FIFO
    arrival order diverges most from generation order on a jittery network;
    WFO degrades with clock error; Tommy uses the error distributions.
    """

    def factory(index: int, rng: np.random.Generator) -> GaussianDistribution:
        return GaussianDistribution(0.0, max(float(rng.uniform(0.5, 1.5)) * clock_std, 1e-12))

    scenario = build_scenario(
        ScenarioConfig(
            num_clients=num_clients,
            arrivals=BurstArrivals(event_time=0.0, reaction_median=200e-6, reaction_sigma=0.4),
            distribution_factory=factory,
            seed=seed,
        )
    )
    messages = list(scenario.messages)
    rng = np.random.default_rng(seed + 1)

    # emulate network arrival order for FIFO: true time + jittery one-way delay
    arrival_order = sorted(
        messages, key=lambda message: message.true_time + float(rng.uniform(0.0, network_jitter))
    )
    fifo_result = FifoSequencer().sequence(messages, arrival_order=arrival_order)
    rows = [evaluate_result("fifo", fifo_result, messages).as_row()]

    wfo = WaitsForOneSequencer()
    rows.append(evaluate_result("wfo", wfo.sequence(messages), messages).as_row())

    truetime = TrueTimeSequencer(client_distributions=scenario.client_distributions)
    rows.append(evaluate_result("truetime", truetime.sequence(messages), messages).as_row())

    tommy = TommySequencer(client_distributions=scenario.client_distributions, config=TommyConfig())
    rows.append(evaluate_result("tommy", tommy.sequence(messages), messages).as_row())
    return rows
