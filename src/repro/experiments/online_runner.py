"""End-to-end online sequencing experiments on the simulated network.

Used by the p_safe ablation and the online examples: clients on a simulated
network send a burst of messages plus heartbeats to an
:class:`~repro.core.online.OnlineTommySequencer`; the run reports both
fairness of the emitted batches and the emission latency distribution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.clocks.local import LocalClock
from repro.core.config import TommyConfig
from repro.core.online import OnlineTommySequencer
from repro.distributions.parametric import GaussianDistribution
from repro.experiments.runner import SequencerComparison, evaluate_result
from repro.metrics.latency import LatencySummary, summarize_latencies
from repro.network.link import UniformJitterDelay
from repro.network.message import TimestampedMessage
from repro.network.transport import Transport
from repro.simulation.event_loop import EventLoop
from repro.simulation.random_source import RandomSource


@dataclass(frozen=True)
class OnlineExperimentSettings:
    """Configuration for one online sequencing run."""

    num_clients: int = 10
    messages_per_client: int = 3
    message_spacing: float = 0.002
    clock_std: float = 0.0005
    network_base_delay: float = 0.001
    network_jitter: float = 0.0005
    heartbeat_interval: float = 0.001
    run_duration: float = 5.0
    config: TommyConfig = TommyConfig()
    seed: int = 11

    def __post_init__(self) -> None:
        if self.num_clients < 1:
            raise ValueError("num_clients must be at least 1")
        if self.messages_per_client < 1:
            raise ValueError("messages_per_client must be at least 1")
        if self.run_duration <= 0:
            raise ValueError("run_duration must be positive")


@dataclass(frozen=True)
class OnlineExperimentOutcome:
    """Fairness and latency outcome of one online run."""

    comparison: SequencerComparison
    latency: LatencySummary
    emitted_batches: int
    flushed_messages: int
    extensions: int

    def as_row(self) -> Dict[str, object]:
        """Flat dictionary for report tables."""
        row = self.comparison.as_row()
        row.update(
            {
                "mean_latency": round(self.latency.mean, 6),
                "p95_latency": round(self.latency.p95, 6),
                "emitted_batches": self.emitted_batches,
                "flushed_messages": self.flushed_messages,
                "extensions": self.extensions,
            }
        )
        return row


def run_online_experiment(
    settings: Optional[OnlineExperimentSettings] = None,
) -> OnlineExperimentOutcome:
    """Simulate clients on a jittery network feeding the online sequencer."""
    settings = settings if settings is not None else OnlineExperimentSettings()
    loop = EventLoop()
    random_source = RandomSource(settings.seed)
    transport = Transport(loop, rng_factory=random_source.stream)

    distributions = {}
    clients = []
    for index in range(settings.num_clients):
        client_id = f"client-{index:03d}"
        sigma = max(settings.clock_std, 1e-9)
        distribution = GaussianDistribution(0.0, sigma)
        distributions[client_id] = distribution
        clock = LocalClock(loop, distribution, random_source.stream(f"clock:{client_id}"))
        client = transport.add_client(
            client_id,
            clock,
            delay_model=UniformJitterDelay(settings.network_base_delay, settings.network_jitter),
            ordered=True,
            heartbeat_interval=settings.heartbeat_interval,
        )
        clients.append(client)

    sequencer = OnlineTommySequencer(
        loop,
        client_distributions=distributions,
        config=settings.config,
        known_clients=list(distributions),
    )
    transport.sequencer.on_arrival(sequencer.receive)

    workload_rng = random_source.stream("workload")
    for client_index, client in enumerate(clients):
        for message_index in range(settings.messages_per_client):
            offset = (
                client_index * settings.message_spacing / max(settings.num_clients, 1)
                + message_index * settings.message_spacing
                + float(workload_rng.uniform(0.0, settings.message_spacing * 0.25))
            )
            loop.schedule_at(0.001 + offset, client.send, {"index": message_index})
        client.start_heartbeats()

    loop.run(until=settings.run_duration)
    pending_before_flush = len(sequencer.pending_messages)
    sequencer.flush()

    sent_messages: List[TimestampedMessage] = []
    for client in clients:
        sent_messages.extend(client.sent_messages)

    comparison = evaluate_result("tommy-online", sequencer.result(), sent_messages)
    latency = summarize_latencies(sequencer.emission_latencies())
    return OnlineExperimentOutcome(
        comparison=comparison,
        latency=latency,
        emitted_batches=len(sequencer.emitted_batches),
        flushed_messages=pending_before_flush,
        extensions=sequencer.extension_count,
    )
