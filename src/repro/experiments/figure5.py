"""Reproduction of Figure 5: fairness (RAS) of Tommy vs TrueTime.

The paper's Figure 5 plots the Rank Agreement Score of Tommy and of the
TrueTime baseline as the clock standard deviation sweeps from 0 to 120 (time
units), with the marker size proportional to the inter-message gap across
clients.  Expected shape: the two systems are comparable when clock errors
are small relative to the gap; Tommy scores higher as the gap shrinks and/or
the clock error grows; under extreme uncertainty Tommy's probabilistic
decisions can push its RAS below zero while TrueTime degrades to zero by
refusing to order anything.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import TommyConfig
from repro.core.sequencer import TommySequencer
from repro.distributions.parametric import GaussianDistribution
from repro.experiments.runner import evaluate_result
from repro.sequencers.truetime import TrueTimeSequencer
from repro.workloads.arrivals import UniformGapArrivals
from repro.workloads.scenario import ScenarioConfig, build_scenario


@dataclass(frozen=True)
class Figure5Settings:
    """Sweep settings for the Figure 5 reproduction.

    The paper simulates 500 clients; the default here is smaller so the
    benchmark finishes quickly — pass ``num_clients=500`` for paper scale.
    """

    num_clients: int = 80
    messages_per_client: int = 1
    sigma_values: Tuple[float, ...] = (1.0, 20.0, 40.0, 60.0, 80.0, 100.0, 120.0)
    gap_values: Tuple[float, ...] = (5.0, 20.0, 80.0)
    threshold: float = 0.75
    truetime_sigma_multiplier: float = 3.0
    sigma_heterogeneity: float = 0.5
    seed: int = 7

    def __post_init__(self) -> None:
        if self.num_clients < 2:
            raise ValueError("num_clients must be at least 2")
        if self.messages_per_client < 1:
            raise ValueError("messages_per_client must be at least 1")
        if not 0.0 <= self.sigma_heterogeneity < 1.0:
            raise ValueError("sigma_heterogeneity must be in [0, 1)")


@dataclass(frozen=True)
class Figure5Point:
    """One (clock std-dev, inter-message gap) point of the figure."""

    clock_std: float
    message_gap: float
    tommy_ras: int
    truetime_ras: int
    tommy_ras_normalized: float
    truetime_ras_normalized: float
    tommy_batches: int
    truetime_batches: int
    message_count: int

    def as_row(self) -> Dict[str, object]:
        """Flat dictionary for tables / CSV output."""
        return {
            "clock_std": self.clock_std,
            "gap": self.message_gap,
            "tommy_ras": self.tommy_ras,
            "truetime_ras": self.truetime_ras,
            "tommy_ras_norm": round(self.tommy_ras_normalized, 4),
            "truetime_ras_norm": round(self.truetime_ras_normalized, 4),
            "tommy_batches": self.tommy_batches,
            "truetime_batches": self.truetime_batches,
            "messages": self.message_count,
        }


def _gaussian_factory(clock_std: float, heterogeneity: float):
    def factory(client_index: int, rng: np.random.Generator) -> GaussianDistribution:
        if clock_std <= 0:
            return GaussianDistribution(0.0, 1e-9)
        low = clock_std * (1.0 - heterogeneity)
        high = clock_std * (1.0 + heterogeneity)
        sigma = float(rng.uniform(low, high)) if heterogeneity > 0 else clock_std
        mean = float(rng.normal(0.0, clock_std * 0.1))
        return GaussianDistribution(mean, max(sigma, 1e-9))

    return factory


def run_figure5_point(
    clock_std: float,
    gap: float,
    settings: Figure5Settings,
) -> Figure5Point:
    """Evaluate Tommy and the TrueTime baseline at one sweep point."""
    scenario = build_scenario(
        ScenarioConfig(
            num_clients=settings.num_clients,
            arrivals=UniformGapArrivals(
                messages_per_client=settings.messages_per_client, gap=gap, jitter_fraction=0.2
            ),
            distribution_factory=_gaussian_factory(clock_std, settings.sigma_heterogeneity),
            seed=settings.seed + int(clock_std * 1000) + int(gap * 17),
        )
    )
    distributions = scenario.client_distributions
    tommy = TommySequencer(
        client_distributions=distributions,
        config=TommyConfig(threshold=settings.threshold),
    )
    truetime = TrueTimeSequencer(
        client_distributions=distributions,
        sigma_multiplier=settings.truetime_sigma_multiplier,
    )
    messages = list(scenario.messages)
    tommy_eval = evaluate_result("tommy", tommy.sequence(messages), messages)
    truetime_eval = evaluate_result("truetime", truetime.sequence(messages), messages)
    return Figure5Point(
        clock_std=clock_std,
        message_gap=gap,
        tommy_ras=tommy_eval.ras.score,
        truetime_ras=truetime_eval.ras.score,
        tommy_ras_normalized=tommy_eval.ras.normalized_score,
        truetime_ras_normalized=truetime_eval.ras.normalized_score,
        tommy_batches=tommy_eval.batches.batch_count,
        truetime_batches=truetime_eval.batches.batch_count,
        message_count=len(messages),
    )


def run_figure5(settings: Optional[Figure5Settings] = None) -> List[Figure5Point]:
    """Run the full Figure 5 sweep and return one point per (std, gap) pair."""
    settings = settings if settings is not None else Figure5Settings()
    points: List[Figure5Point] = []
    for gap in settings.gap_values:
        for clock_std in settings.sigma_values:
            points.append(run_figure5_point(clock_std, gap, settings))
    return points


def figure5_rows(points: Sequence[Figure5Point]) -> List[Dict[str, object]]:
    """Row dictionaries for :func:`repro.experiments.reporting.format_table`."""
    return [point.as_row() for point in points]
