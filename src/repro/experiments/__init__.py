"""Experiment harness reproducing the paper's evaluation.

* :mod:`repro.experiments.figure5` regenerates Figure 5 (RAS of Tommy vs the
  TrueTime baseline as clock standard deviation and the inter-message gap
  vary).
* :mod:`repro.experiments.ablations` contains the ablation sweeps the paper's
  discussion motivates: batching threshold, p_safe, non-Gaussian
  distributions, learned vs seeded distributions, client-count scaling, and
  the FIFO/WFO baselines.
* :mod:`repro.experiments.cluster_sweep` sweeps shard count × client count
  through the sharded fair-sequencing cluster and reports cross-shard RAS,
  merge latency and per-shard throughput.
* :mod:`repro.experiments.runner` runs one scenario through any set of
  sequencers and collects the metric bundle.
* :mod:`repro.experiments.reporting` renders result rows as aligned text
  tables or CSV for EXPERIMENTS.md.
"""

from repro.experiments.runner import SequencerComparison, run_comparison
from repro.experiments.figure5 import Figure5Point, Figure5Settings, run_figure5
from repro.experiments.ablations import (
    run_baseline_comparison,
    run_distribution_ablation,
    run_learning_ablation,
    run_psafe_sweep,
    run_scaling_sweep,
    run_threshold_sweep,
)
from repro.experiments.cluster_sweep import (
    ClusterRunOutcome,
    run_cluster_scenario,
    run_cluster_sweep,
)
from repro.experiments.chaos_sweep import run_chaos_sweep
from repro.experiments.learned_sweep import run_learned_sweep
from repro.experiments.reporting import format_table, rows_to_csv

__all__ = [
    "run_chaos_sweep",
    "ClusterRunOutcome",
    "run_cluster_scenario",
    "run_cluster_sweep",
    "SequencerComparison",
    "run_comparison",
    "Figure5Point",
    "Figure5Settings",
    "run_figure5",
    "run_threshold_sweep",
    "run_psafe_sweep",
    "run_distribution_ablation",
    "run_learning_ablation",
    "run_learned_sweep",
    "run_scaling_sweep",
    "run_baseline_comparison",
    "format_table",
    "rows_to_csv",
]
