"""Run one scenario through several sequencers and collect metrics."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.metrics.batching_stats import BatchStatistics, batch_statistics
from repro.metrics.kendall import kendall_tau_from_result
from repro.metrics.pairwise import PairwiseStats, pairwise_stats
from repro.metrics.ras import RankAgreementBreakdown, rank_agreement_score
from repro.network.message import TimestampedMessage
from repro.sequencers.base import OfflineSequencer, SequencingResult
from repro.workloads.scenario import Scenario


@dataclass(frozen=True)
class SequencerComparison:
    """Metrics of one sequencer on one scenario."""

    sequencer_name: str
    ras: RankAgreementBreakdown
    pairwise: PairwiseStats
    kendall_distance: float
    batches: BatchStatistics
    result: SequencingResult

    def as_row(self) -> Dict[str, object]:
        """Flat dictionary suitable for report tables."""
        return {
            "sequencer": self.sequencer_name,
            "ras": self.ras.score,
            "ras_normalized": round(self.ras.normalized_score, 4),
            "correct_pairs": self.ras.correct_pairs,
            "incorrect_pairs": self.ras.incorrect_pairs,
            "indifferent_pairs": self.ras.indifferent_pairs,
            "accuracy": round(self.pairwise.accuracy, 4),
            "kendall_distance": round(self.kendall_distance, 4),
            "batches": self.batches.batch_count,
            "mean_batch_size": round(self.batches.mean_size, 3),
        }


def evaluate_result(
    name: str, result: SequencingResult, messages: Sequence[TimestampedMessage]
) -> SequencerComparison:
    """Score an existing sequencing result against ground truth."""
    return SequencerComparison(
        sequencer_name=name,
        ras=rank_agreement_score(result, messages),
        pairwise=pairwise_stats(result, messages),
        kendall_distance=kendall_tau_from_result(result, messages),
        batches=batch_statistics(result),
        result=result,
    )


def run_comparison(
    scenario: Scenario, sequencers: Dict[str, OfflineSequencer]
) -> List[SequencerComparison]:
    """Sequence the scenario's messages with every sequencer and score each."""
    messages = list(scenario.messages)
    comparisons: List[SequencerComparison] = []
    for name, sequencer in sequencers.items():
        result = sequencer.sequence(messages)
        comparisons.append(evaluate_result(name, result, messages))
    return comparisons
