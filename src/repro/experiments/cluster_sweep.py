"""Cluster scaling experiment: shard count × client count sweep.

For every combination the sweep builds a multi-region cluster scenario,
replays it through a :class:`~repro.cluster.sharded.ShardedSequencer` with
region-affine placement, merges the per-shard streams, and reports:

* cross-shard fairness — the Rank Agreement Score of the *merged* order
  against ground truth (and the single-sequencer delta a 1-shard row gives);
* merge latency — wall-clock cost of the probabilistic cross-shard merge;
* per-shard throughput — messages sequenced per wall-clock second of
  simulation divided by the shard count (the scale-out payoff: each shard's
  O(pending^2) tentative batching shrinks as clients spread out).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.harness import replay_scenario
from repro.cluster.merge import MergeOutcome, merge_fingerprint
from repro.cluster.router import HashSharding, ShardingPolicy
from repro.cluster.sharded import ShardedSequencer
from repro.core.config import TommyConfig
from repro.experiments.runner import SequencerComparison, evaluate_result
from repro.runtime.base import ClusterWorkload, resolve_backend
from repro.simulation.event_loop import EventLoop
from repro.workloads.cluster import build_cluster_scenario, region_affine_policy


@dataclass(frozen=True)
class ClusterRunOutcome:
    """One cluster run: merged-order metrics plus runtime accounting."""

    comparison: SequencerComparison
    merge: MergeOutcome
    num_shards: int
    num_clients: int
    policy_name: str
    run_wall_seconds: float
    message_count: int
    per_shard_emitted: List[int]
    failovers: int
    streaming_wall_seconds: Optional[float] = None
    streaming_parity: Optional[bool] = None
    #: Unified stats snapshot (:meth:`ShardedSequencer.observability_report`).
    observability: Optional[Dict[str, object]] = None
    merge_topology: str = "flat"
    #: Which execution backend ran the scenario (``"sim"`` or ``"procs"``).
    runtime: str = "sim"
    #: Worker-process count (1 on the sim backend).
    num_workers: int = 1
    #: Dead workers respawned by the procs supervisor (0 on sim).
    worker_restarts: int = 0
    #: Shards dropped after an exhausted restart budget (empty on sim).
    lost_shards: Tuple[int, ...] = ()

    @property
    def per_shard_throughput(self) -> float:
        """Messages per wall second per shard during the sequencing run."""
        if self.run_wall_seconds <= 0:
            return 0.0
        return self.message_count / self.run_wall_seconds / self.num_shards

    @property
    def total_throughput(self) -> float:
        """Messages per wall second across the whole cluster."""
        if self.run_wall_seconds <= 0:
            return 0.0
        return self.message_count / self.run_wall_seconds

    def as_row(self) -> Dict[str, object]:
        """Flat dictionary for report tables."""
        return {
            "shards": self.num_shards,
            "clients": self.num_clients,
            "policy": self.policy_name,
            "runtime": self.runtime,
            "workers": self.num_workers,
            "merge_topology": self.merge_topology,
            "ras": self.comparison.ras.score,
            "ras_normalized": round(self.comparison.ras.normalized_score, 4),
            "incorrect_pairs": self.comparison.ras.incorrect_pairs,
            "batches": self.comparison.batches.batch_count,
            "merged_cross_shard": self.merge.merged_cross_shard,
            "merge_latency_ms": round(self.merge.wall_seconds * 1e3, 3),
            "pruned_pairs": self.merge.cross_pairs_pruned,
            "streaming_ms": (
                round(self.streaming_wall_seconds * 1e3, 3)
                if self.streaming_wall_seconds is not None
                else None
            ),
            "streaming_parity": self.streaming_parity,
            "restarts": self.worker_restarts,
            "lost_shards": list(self.lost_shards),
            "shard_throughput": round(self.per_shard_throughput, 1),
            "total_throughput": round(self.total_throughput, 1),
            "wall_seconds": round(self.run_wall_seconds, 4),
        }


def run_cluster_scenario(
    num_clients: int,
    num_shards: int,
    seed: int = 21,
    config: Optional[TommyConfig] = None,
    policy: Optional[ShardingPolicy] = None,
    num_regions: int = 4,
    streaming: bool = True,
    merge_topology: str = "flat",
    merge_fanout: int = 2,
    runtime: str = "sim",
    num_workers: Optional[int] = None,
    max_restarts: Optional[int] = None,
    on_shard_loss: str = "raise",
) -> ClusterRunOutcome:
    """Replay one multi-region scenario through an N-shard cluster.

    ``policy`` defaults to region-affine placement derived from the
    generated scenario (pass e.g. :class:`HashSharding` to ablate it).
    With ``streaming`` (the default) the cluster additionally maintains the
    live incremental merge; the reported ``streaming_ms`` is the cost of
    linearising that maintained state at drain time and
    ``streaming_parity`` checks it against the offline re-merge.
    ``merge_topology``/``merge_fanout`` select the hierarchical merge tree
    (``"binary"`` or ``"region"``; parity-equal to ``"flat"``).

    ``runtime`` selects the execution backend: ``"sim"`` (this function's
    historical single-loop path, kept verbatim as the oracle) or ``"procs"``
    (each shard sequences in its own worker process via
    :class:`~repro.runtime.procs.ProcBackend`; ``num_workers`` caps the
    process count).  Same seed ⇒ bitwise-identical merged order either way.
    ``max_restarts``/``on_shard_loss`` tune the procs supervisor's
    :class:`~repro.runtime.procs.RestartPolicy` budget and its degraded mode
    once that budget is exhausted (ignored on the sim backend).
    """
    placement = build_cluster_scenario(num_clients, num_regions=num_regions, seed=seed)
    scenario = placement.scenario
    if policy is None:
        policy = region_affine_policy(placement) if num_shards > 1 else HashSharding()
    config = config if config is not None else TommyConfig()

    if runtime != "sim":
        return _run_backend_scenario(
            runtime,
            placement,
            num_clients=num_clients,
            num_shards=num_shards,
            config=config,
            policy=policy,
            merge_topology=merge_topology,
            merge_fanout=merge_fanout,
            num_workers=num_workers,
            max_restarts=max_restarts,
            on_shard_loss=on_shard_loss,
        )

    loop = EventLoop()
    cluster = ShardedSequencer(
        loop,
        scenario.client_distributions,
        num_shards=num_shards,
        config=config,
        policy=policy,
        streaming_merge=streaming,
        merge_topology=merge_topology,
        merge_fanout=merge_fanout,
    )
    replay_scenario(loop, cluster, scenario)

    start = time.perf_counter()
    loop.run()
    cluster.flush()
    run_wall = time.perf_counter() - start

    merge = cluster.merge()
    streaming_wall: Optional[float] = None
    streaming_parity: Optional[bool] = None
    if streaming:
        streaming_start = time.perf_counter()
        live = cluster.live_merge()
        streaming_wall = time.perf_counter() - streaming_start
        streaming_parity = merge_fingerprint(live) == merge_fingerprint(merge)
    messages = list(scenario.messages)
    comparison = evaluate_result(f"cluster@{num_shards}", merge.result, messages)
    observability = cluster.observability_report()
    cluster_snapshot = observability["cluster"]
    return ClusterRunOutcome(
        comparison=comparison,
        merge=merge,
        num_shards=num_shards,
        num_clients=num_clients,
        policy_name=policy.name,
        run_wall_seconds=run_wall,
        message_count=len(messages),
        per_shard_emitted=list(cluster_snapshot["emitted_counts"]),
        failovers=int(cluster_snapshot["failovers"]),
        streaming_wall_seconds=streaming_wall,
        streaming_parity=streaming_parity,
        observability=observability,
        merge_topology=merge_topology,
    )


def _run_backend_scenario(
    runtime: str,
    placement,
    num_clients: int,
    num_shards: int,
    config: TommyConfig,
    policy: ShardingPolicy,
    merge_topology: str,
    merge_fanout: int,
    num_workers: Optional[int],
    max_restarts: Optional[int] = None,
    on_shard_loss: str = "raise",
) -> ClusterRunOutcome:
    """Run one scenario through a non-sim execution backend."""
    workload = ClusterWorkload.from_scenario(
        placement,
        num_shards=num_shards,
        config=config,
        policy=policy,
        merge_topology=merge_topology,
        merge_fanout=merge_fanout,
    )
    kwargs: Dict[str, object] = {}
    if num_workers is not None:
        kwargs["num_workers"] = num_workers
    if max_restarts is not None:
        from repro.runtime.procs import RestartPolicy

        kwargs["restart_policy"] = RestartPolicy(max_restarts=max_restarts)
    if on_shard_loss != "raise":
        kwargs["on_shard_loss"] = on_shard_loss
    with resolve_backend(runtime, **kwargs) as backend:
        outcome = backend.run(workload)
    messages = list(workload.messages)
    comparison = evaluate_result(
        f"cluster@{num_shards}-{runtime}", outcome.merge.result, messages
    )
    return ClusterRunOutcome(
        comparison=comparison,
        merge=outcome.merge,
        num_shards=num_shards,
        num_clients=num_clients,
        policy_name=policy.name,
        run_wall_seconds=outcome.wall_seconds,
        message_count=outcome.message_count,
        per_shard_emitted=[
            sum(batch.size for batch in batches) for batches in outcome.shard_batches
        ],
        failovers=0,
        observability={"runtime": outcome.details},
        merge_topology=merge_topology,
        runtime=runtime,
        num_workers=outcome.num_workers,
        worker_restarts=int(outcome.details.get("worker_restarts", 0) or 0),
        lost_shards=outcome.lost_shards,
    )


def run_cluster_sweep(
    shard_counts: Sequence[int] = (1, 2, 4),
    client_counts: Sequence[int] = (32, 64),
    seed: int = 21,
    config: Optional[TommyConfig] = None,
    streaming: bool = True,
    merge_topology: str = "flat",
    merge_fanout: int = 2,
    runtime: str = "sim",
    num_workers: Optional[int] = None,
    max_restarts: Optional[int] = None,
    on_shard_loss: str = "raise",
) -> List[Dict[str, object]]:
    """Sweep shard count × client count and return one row per combination."""
    rows: List[Dict[str, object]] = []
    for num_clients in client_counts:
        for num_shards in shard_counts:
            outcome = run_cluster_scenario(
                num_clients=num_clients,
                num_shards=num_shards,
                seed=seed,
                config=config,
                streaming=streaming,
                merge_topology=merge_topology if num_shards > 1 else "flat",
                merge_fanout=merge_fanout,
                runtime=runtime,
                num_workers=num_workers,
                max_restarts=max_restarts,
                on_shard_loss=on_shard_loss,
            )
            rows.append(outcome.as_row())
    return rows
