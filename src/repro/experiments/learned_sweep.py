"""Static-Gaussian vs live-learned distributions through the online sequencer.

The paper's §5 claim, run end to end: clients with genuinely non-Gaussian
clocks stream messages into an :class:`~repro.core.online.OnlineTommySequencer`
while their sync probes flow through a
:class:`~repro.sync.refresh.DistributionRefreshLoop` that re-estimates each
client's offset distribution and pushes it into the *running* sequencer.
Three configurations are scored per probe budget:

* ``static-gaussian`` — the naive bootstrap: a Gaussian moment-matched to a
  few early (unfiltered) probes, never refreshed;
* ``live-learned`` — starts from the same static guess, then refreshes live
  from RTT-filtered probes (empirical estimates, served by the engine's
  vectorized pair-table kernel);
* ``oracle-seeded`` — the ground-truth distributions (upper bound).

The Rank Agreement Score of the emitted order quantifies how much fairness
the live pipeline recovers.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

from repro.core.config import TommyConfig
from repro.core.online import OnlineTommySequencer
from repro.distributions.base import OffsetDistribution
from repro.experiments.runner import evaluate_result
from repro.simulation.event_loop import EventLoop
from repro.sync.estimator import OffsetEstimator
from repro.sync.refresh import DistributionRefreshLoop
from repro.workloads.learned import LearnedWorkload, build_learned_workload


def _replay(
    workload: LearnedWorkload,
    distributions: Dict[str, OffsetDistribution],
    config: TommyConfig,
    learn: bool,
    refresh_every: int = 16,
    best_fraction: float = 0.5,
) -> Dict[str, object]:
    """Stream the workload once; optionally refresh distributions live."""
    loop = EventLoop()
    sequencer = OnlineTommySequencer(
        loop, dict(distributions), config=config, name="tommy-learned"
    )
    refresh: Optional[DistributionRefreshLoop] = None
    if learn:
        refresh = DistributionRefreshLoop(
            sequencer,
            method="empirical",
            refresh_every=refresh_every,
            estimator=OffsetEstimator(best_fraction=best_fraction),
        )

    messages = list(workload.scenario.messages)
    horizon = max(message.true_time for message in messages) if messages else 0.0
    for message in messages:
        loop.schedule_at(message.true_time, sequencer.receive, message)
    if refresh is not None:
        # spread each client's probe stream across the run so estimates
        # genuinely refresh mid-stream
        for client_id, stream in sorted(workload.probe_streams.items()):
            for index, probe in enumerate(stream):
                when = horizon * (index + 1) / (len(stream) + 1)
                loop.schedule_at(when, refresh.observe_probe, probe)

    start = time.perf_counter()
    loop.run(until=horizon + 1.0)
    sequencer.flush()
    wall = time.perf_counter() - start

    comparison = evaluate_result("tommy-learned", sequencer.result(), messages)
    engine = sequencer.engine_stats()
    row: Dict[str, object] = {
        "ras": comparison.ras.score,
        "ras_normalized": round(comparison.ras.normalized_score, 4),
        "incorrect_pairs": comparison.ras.incorrect_pairs,
        "batches": comparison.batches.batch_count,
        "refreshes": sequencer.distribution_refreshes,
        "table_evals": engine.table_evaluations,
        "scalar_evals": engine.scalar_evaluations,
        "wall_seconds": round(wall, 4),
    }
    return row


def run_learned_sweep(
    probe_budgets: Sequence[int] = (24, 96),
    num_clients: int = 16,
    messages_per_client: int = 2,
    gap: float = 10.0,
    clock_std: float = 30.0,
    refresh_every: int = 16,
    seed: int = 23,
    config: Optional[TommyConfig] = None,
) -> List[Dict[str, object]]:
    """One row per (probe budget, configuration): the live-learning payoff.

    Deterministic for fixed parameters; the ``oracle-seeded`` row is the
    ceiling, ``static-gaussian`` the floor, and ``live-learned`` should climb
    from the floor toward the ceiling as the probe budget grows.
    """
    config = config if config is not None else TommyConfig(
        p_safe=0.99, completeness_mode="none"
    )
    rows: List[Dict[str, object]] = []
    for probes in probe_budgets:
        workload = build_learned_workload(
            num_clients=num_clients,
            messages_per_client=messages_per_client,
            probes_per_client=probes,
            gap=gap,
            clock_std=clock_std,
            seed=seed,
        )
        runs = {
            "static-gaussian": (workload.static_gaussians, False),
            "live-learned": (workload.static_gaussians, True),
            "oracle-seeded": (workload.truth, False),
        }
        for mode, (distributions, learn) in runs.items():
            row: Dict[str, object] = {"mode": mode, "probes_per_client": probes}
            row.update(
                _replay(
                    workload,
                    distributions,
                    config,
                    learn=learn,
                    refresh_every=refresh_every,
                )
            )
            rows.append(row)
    return rows
