"""The *learned* workload: non-Gaussian clocks plus sync-probe streams.

Paper §3.3/§5: clients do not know their offset distribution f_theta — they
learn it from synchronization probes while traffic flows.  This workload
generates exactly that situation:

* every client's ground-truth clock-error distribution is non-Gaussian
  (a skewed two-component mixture, per-client parameters), so the static
  Gaussian assumption is genuinely wrong;
* alongside the timestamped messages, each client carries a stream of
  :class:`~repro.sync.probe.SyncProbe` observations of its own offsets.
  A configurable fraction of probes is congested: inflated round-trip delay
  *and* an asymmetry-biased offset reading — the probes the estimator's
  ``best_fraction`` RTT filter exists to discard;
* a deliberately mis-fitted static Gaussian guess per client (moment-matched
  to a handful of early probes, congested ones included) provides the
  baseline the live-learned pipeline is compared against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.distributions.base import OffsetDistribution
from repro.distributions.mixtures import MixtureDistribution
from repro.distributions.parametric import GaussianDistribution
from repro.sync.probe import SyncProbe
from repro.workloads.arrivals import UniformGapArrivals
from repro.workloads.scenario import Scenario, ScenarioConfig, build_scenario


def synthesize_probe(
    client_id: str,
    offset: float,
    round_trip: float,
    when: float = 0.0,
) -> SyncProbe:
    """A four-timestamp probe with exact offset and RTT readings.

    The timestamps are constructed so that
    ``probe.client_offset_estimate == offset`` and
    ``probe.round_trip_delay == round_trip`` — handy for workloads and tests
    that want to drive the estimator/learner with controlled observations.
    """
    if round_trip < 0:
        raise ValueError(f"round_trip must be non-negative, got {round_trip!r}")
    t2 = when + 0.5 * round_trip
    return SyncProbe(
        client_id=client_id,
        t1=when + offset,
        t2=t2,
        t3=t2,
        t4=when + round_trip + offset,
        true_offset_forward=offset,
        true_offset_backward=offset,
    )


@dataclass(frozen=True)
class LearnedWorkload:
    """A learned-pipeline scenario: messages, probes and distribution guesses."""

    scenario: Scenario
    probe_streams: Dict[str, List[SyncProbe]]
    static_gaussians: Dict[str, OffsetDistribution]

    @property
    def truth(self) -> Dict[str, OffsetDistribution]:
        """Ground-truth (non-Gaussian) client error distributions."""
        return self.scenario.client_distributions

    @property
    def probe_count(self) -> int:
        """Total probes across all clients."""
        return sum(len(stream) for stream in self.probe_streams.values())


def _mixture_factory(clock_std: float):
    """Per-client skewed bimodal clock errors (distinct parameters each)."""

    def factory(client_index: int, rng: np.random.Generator) -> OffsetDistribution:
        scale = max(float(rng.uniform(0.5, 1.5)) * clock_std, 1e-9)
        tail_shift = float(rng.uniform(1.0, 2.5)) * scale
        weight = float(rng.uniform(0.65, 0.9))
        return MixtureDistribution(
            [
                GaussianDistribution(float(rng.normal(0.0, 0.1 * scale)), 0.5 * scale),
                GaussianDistribution(tail_shift, 0.8 * scale),
            ],
            [weight, 1.0 - weight],
        )

    return factory


def build_learned_workload(
    num_clients: int = 24,
    messages_per_client: int = 2,
    probes_per_client: int = 96,
    gap: float = 10.0,
    clock_std: float = 30.0,
    base_rtt: float = 1e-3,
    congested_fraction: float = 0.25,
    congestion_delay: float = 50e-3,
    congestion_bias: float = 3.0,
    seed: int = 0,
) -> LearnedWorkload:
    """Generate a learned-pipeline workload.

    ``congested_fraction`` of each client's probes suffer an inflated RTT and
    an offset reading biased by ``congestion_bias * clock_std`` (queueing
    asymmetry); clean probes observe true offset samples at ``base_rtt``.
    The static Gaussian guess per client is moment-matched to the first 8
    probes *without* RTT filtering — the naive bootstrap a client would do
    before the learned pipeline exists.
    """
    if not 0.0 <= congested_fraction < 1.0:
        raise ValueError(f"congested_fraction must be in [0, 1), got {congested_fraction!r}")
    scenario = build_scenario(
        ScenarioConfig(
            num_clients=num_clients,
            arrivals=UniformGapArrivals(
                messages_per_client=messages_per_client, gap=gap, jitter_fraction=0.2
            ),
            distribution_factory=_mixture_factory(clock_std),
            seed=seed,
        )
    )
    rng = np.random.default_rng(seed + 1)
    probe_streams: Dict[str, List[SyncProbe]] = {}
    static_gaussians: Dict[str, OffsetDistribution] = {}
    for client_id, truth in scenario.client_distributions.items():
        stream: List[SyncProbe] = []
        for probe_index in range(probes_per_client):
            offset = float(truth.sample(rng))
            if float(rng.uniform()) < congested_fraction:
                round_trip = base_rtt + float(rng.exponential(congestion_delay))
                offset += congestion_bias * clock_std * float(rng.uniform(0.5, 1.5))
            else:
                round_trip = base_rtt * float(rng.uniform(0.8, 1.2))
            stream.append(
                synthesize_probe(client_id, offset, round_trip, when=float(probe_index))
            )
        probe_streams[client_id] = stream
        bootstrap = np.asarray(
            [probe.client_offset_estimate for probe in stream[:8]], dtype=float
        )
        std = float(bootstrap.std(ddof=1)) if bootstrap.size > 1 else clock_std
        static_gaussians[client_id] = GaussianDistribution(
            float(bootstrap.mean()), max(std, 1e-9)
        )
    return LearnedWorkload(
        scenario=scenario,
        probe_streams=probe_streams,
        static_gaussians=static_gaussians,
    )
