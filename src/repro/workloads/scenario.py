"""Offline evaluation scenarios: arrivals + clock errors → timestamped messages.

This mirrors the paper's §4 methodology exactly: every client is assigned a
clock-error distribution; at each ground-truth generation time ``t`` a noise
sample ``eps`` is drawn and the message is tagged ``T = t + eps``.  The
sequencer sees only ``T`` (and the client's distribution); ground-truth times
are retained on the message for scoring.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.distributions.base import OffsetDistribution
from repro.distributions.parametric import GaussianDistribution
from repro.network.message import TimestampedMessage
from repro.workloads.arrivals import ArrivalProcess, UniformGapArrivals

DistributionFactory = Callable[[int, np.random.Generator], OffsetDistribution]


@dataclass(frozen=True)
class ClientSpec:
    """One client's identity and ground-truth clock-error distribution."""

    client_id: str
    distribution: OffsetDistribution


@dataclass(frozen=True)
class ScenarioConfig:
    """Configuration of an offline evaluation scenario.

    Attributes
    ----------
    num_clients:
        Number of clients (the paper uses 500).
    arrivals:
        Arrival process producing ground-truth generation times.
    distribution_factory:
        Callable ``(client_index, rng) -> OffsetDistribution`` assigning each
        client its clock-error distribution.  Defaults to zero-mean Gaussians
        with per-client standard deviations drawn uniformly from
        ``[0, default_sigma]``.
    default_sigma:
        Scale used by the default distribution factory.
    seed:
        Root seed for all randomness in the scenario.
    """

    num_clients: int = 500
    arrivals: ArrivalProcess = field(
        default_factory=lambda: UniformGapArrivals(messages_per_client=1, gap=1.0)
    )
    distribution_factory: Optional[DistributionFactory] = None
    default_sigma: float = 10.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.num_clients < 1:
            raise ValueError("num_clients must be at least 1")
        if self.default_sigma < 0:
            raise ValueError("default_sigma must be non-negative")


@dataclass(frozen=True)
class Scenario:
    """A generated scenario: messages plus ground-truth client distributions."""

    messages: Tuple[TimestampedMessage, ...]
    clients: Tuple[ClientSpec, ...]
    config: ScenarioConfig

    @property
    def client_distributions(self) -> Dict[str, OffsetDistribution]:
        """Mapping from client id to its ground-truth error distribution."""
        return {client.client_id: client.distribution for client in self.clients}

    @property
    def client_ids(self) -> Tuple[str, ...]:
        """All client ids."""
        return tuple(client.client_id for client in self.clients)

    def messages_by_true_time(self) -> List[TimestampedMessage]:
        """Messages sorted by ground-truth generation time."""
        return sorted(self.messages, key=lambda message: message.true_time)

    def messages_by_client(self) -> Dict[str, List[TimestampedMessage]]:
        """Messages grouped per client, each group in true-time order."""
        grouped: Dict[str, List[TimestampedMessage]] = {
            client_id: [] for client_id in self.client_ids
        }
        for message in self.messages_by_true_time():
            grouped[message.client_id].append(message)
        return grouped


def _default_factory(default_sigma: float) -> DistributionFactory:
    def factory(client_index: int, rng: np.random.Generator) -> OffsetDistribution:
        sigma = float(rng.uniform(0.0, default_sigma)) if default_sigma > 0 else 0.0
        sigma = max(sigma, 1e-9)
        return GaussianDistribution(0.0, sigma)

    return factory


def build_scenario(config: ScenarioConfig) -> Scenario:
    """Generate messages and client distributions for ``config``.

    Deterministic for a given configuration (all randomness flows from
    ``config.seed``).
    """
    rng = np.random.default_rng(config.seed)
    factory = config.distribution_factory or _default_factory(config.default_sigma)

    clients: List[ClientSpec] = []
    for index in range(config.num_clients):
        client_id = f"client-{index:04d}"
        clients.append(ClientSpec(client_id=client_id, distribution=factory(index, rng)))

    arrival_times = config.arrivals.generate([client.client_id for client in clients], rng)
    distributions = {client.client_id: client.distribution for client in clients}

    messages: List[TimestampedMessage] = []
    sequence_numbers: Dict[str, int] = {client.client_id: 0 for client in clients}
    for client_id, times in arrival_times.items():
        for true_time in times:
            noise = float(distributions[client_id].sample(rng))
            sequence_numbers[client_id] += 1
            messages.append(
                TimestampedMessage(
                    client_id=client_id,
                    timestamp=true_time + noise,
                    true_time=true_time,
                    payload=None,
                    sequence_number=sequence_numbers[client_id],
                )
            )
    messages.sort(key=lambda message: message.true_time)
    return Scenario(messages=tuple(messages), clients=tuple(clients), config=config)
