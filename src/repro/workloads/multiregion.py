"""Multi-region deployment scenarios.

The paper's motivation for a *general* fair sequencer is the multi-region /
multi-datacenter deployment: within a single datacenter clock error can be
driven to nanoseconds, but across regions it reaches tens of microseconds to
milliseconds, and network latency differs per region.  This module builds
scenario ingredients for that setting: each region has its own clock-error
scale (and optional bias) and its own one-way delay profile to the
sequencer's region.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.distributions.base import OffsetDistribution
from repro.distributions.parametric import GaussianDistribution
from repro.network.link import DelayModel, LogNormalDelay
from repro.workloads.scenario import Scenario, ScenarioConfig, build_scenario
from repro.workloads.arrivals import ArrivalProcess, BurstArrivals


@dataclass(frozen=True)
class RegionProfile:
    """Clock and network characteristics of one cloud region.

    Attributes
    ----------
    name:
        Region identifier (e.g. ``"us-east"``).
    clock_std:
        Typical clock-error standard deviation for clients in this region
        (seconds relative to the sequencer's clock).
    clock_bias:
        Mean clock error for the region (asymmetric paths to the time source
        show up as a bias).
    delay_median / delay_sigma:
        Parameters of the log-normal one-way delay from this region to the
        sequencer's region.
    weight:
        Relative share of clients placed in this region.
    """

    name: str
    clock_std: float
    clock_bias: float = 0.0
    delay_median: float = 0.001
    delay_sigma: float = 0.3
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("region name must be non-empty")
        if self.clock_std < 0:
            raise ValueError("clock_std must be non-negative")
        if self.delay_median <= 0:
            raise ValueError("delay_median must be positive")
        if self.delay_sigma < 0:
            raise ValueError("delay_sigma must be non-negative")
        if self.weight <= 0:
            raise ValueError("weight must be positive")

    def delay_model(self) -> DelayModel:
        """One-way delay model from this region to the sequencer."""
        return LogNormalDelay(median=self.delay_median, sigma=self.delay_sigma)

    def sample_distribution(self, rng: np.random.Generator) -> OffsetDistribution:
        """Clock-error distribution for one client placed in this region."""
        std = max(float(rng.uniform(0.5, 1.5)) * self.clock_std, 1e-12)
        bias = self.clock_bias + float(rng.normal(0.0, 0.2 * max(self.clock_std, 1e-12)))
        return GaussianDistribution(bias, std)


#: Two default profiles used by examples/tests: a well-synchronized local
#: region and a remote region with millisecond-level clock error, matching the
#: paper's single-DC vs multi-region contrast.
DEFAULT_REGIONS: Tuple[RegionProfile, ...] = (
    RegionProfile(name="local", clock_std=20e-6, delay_median=200e-6, delay_sigma=0.2, weight=1.0),
    RegionProfile(
        name="remote",
        clock_std=2e-3,
        clock_bias=0.5e-3,
        delay_median=30e-3,
        delay_sigma=0.3,
        weight=1.0,
    ),
)


@dataclass(frozen=True)
class MultiRegionScenario:
    """A generated multi-region scenario plus per-client region placement."""

    scenario: Scenario
    region_of: Dict[str, str]
    regions: Tuple[RegionProfile, ...]

    @property
    def client_distributions(self) -> Dict[str, OffsetDistribution]:
        """Clock-error distribution per client (forwarded from the scenario)."""
        return self.scenario.client_distributions

    def clients_in(self, region_name: str) -> List[str]:
        """Client ids placed in ``region_name``."""
        return sorted(client for client, region in self.region_of.items() if region == region_name)

    def delay_model_for(self, client_id: str) -> DelayModel:
        """One-way delay model for ``client_id``'s region."""
        profile = next(
            region for region in self.regions if region.name == self.region_of[client_id]
        )
        return profile.delay_model()


def build_multiregion_scenario(
    num_clients: int,
    regions: Sequence[RegionProfile] = DEFAULT_REGIONS,
    arrivals: Optional[ArrivalProcess] = None,
    seed: int = 0,
) -> MultiRegionScenario:
    """Place ``num_clients`` across ``regions`` and generate their messages.

    Clients are assigned to regions proportionally to the region weights
    (deterministically for a given seed); each client's clock-error
    distribution is drawn from its region's profile.  The arrival process
    defaults to a volatility burst, the workload where cross-region fairness
    matters most.
    """
    if num_clients < 1:
        raise ValueError("num_clients must be at least 1")
    regions = tuple(regions)
    if not regions:
        raise ValueError("need at least one region profile")

    rng = np.random.default_rng(seed)
    weights = np.asarray([region.weight for region in regions], dtype=float)
    weights = weights / weights.sum()
    assignments = [regions[int(rng.choice(len(regions), p=weights))] for _ in range(num_clients)]

    region_of: Dict[str, str] = {}
    placed_profiles: Dict[int, RegionProfile] = {}
    for index, profile in enumerate(assignments):
        client_id = f"client-{index:04d}"
        region_of[client_id] = profile.name
        placed_profiles[index] = profile

    def factory(client_index: int, factory_rng: np.random.Generator) -> OffsetDistribution:
        return placed_profiles[client_index].sample_distribution(factory_rng)

    config = ScenarioConfig(
        num_clients=num_clients,
        arrivals=(
            arrivals
            if arrivals is not None
            else BurstArrivals(reaction_median=500e-6, reaction_sigma=0.5)
        ),
        distribution_factory=factory,
        seed=seed,
    )
    scenario = build_scenario(config)
    return MultiRegionScenario(scenario=scenario, region_of=region_of, regions=regions)
