"""Arrival processes: when (in true time) clients generate messages."""

from __future__ import annotations

import abc
from typing import Dict, List, Sequence

import numpy as np


class ArrivalProcess(abc.ABC):
    """Produces per-client ground-truth generation times."""

    @abc.abstractmethod
    def generate(
        self, client_ids: Sequence[str], rng: np.random.Generator
    ) -> Dict[str, List[float]]:
        """Return a sorted list of generation times for every client."""


class UniformGapArrivals(ArrivalProcess):
    """Global event stream with a fixed mean gap, dealt round-robin to clients.

    This is the Figure 5 workload: the *inter-messages gap across clients*
    controls how temporally close competing messages are.  Each consecutive
    global event is separated by ``gap`` seconds (optionally jittered) and
    assigned to the next client in round-robin order.
    """

    def __init__(
        self,
        messages_per_client: int,
        gap: float,
        jitter_fraction: float = 0.0,
        start_time: float = 0.0,
    ) -> None:
        if messages_per_client < 1:
            raise ValueError("messages_per_client must be at least 1")
        if gap < 0:
            raise ValueError("gap must be non-negative")
        if not 0.0 <= jitter_fraction < 1.0:
            raise ValueError("jitter_fraction must be in [0, 1)")
        self._per_client = int(messages_per_client)
        self._gap = float(gap)
        self._jitter = float(jitter_fraction)
        self._start = float(start_time)

    @property
    def gap(self) -> float:
        """Mean spacing between consecutive events across all clients."""
        return self._gap

    def generate(
        self, client_ids: Sequence[str], rng: np.random.Generator
    ) -> Dict[str, List[float]]:
        client_ids = list(client_ids)
        total = self._per_client * len(client_ids)
        times: Dict[str, List[float]] = {client: [] for client in client_ids}
        current = self._start
        for index in range(total):
            client = client_ids[index % len(client_ids)]
            times[client].append(current)
            step = self._gap
            if self._jitter > 0 and self._gap > 0:
                step = self._gap * float(rng.uniform(1.0 - self._jitter, 1.0 + self._jitter))
            # keep strictly increasing even at gap == 0 (no two events share an instant)
            current += max(step, 1e-12)
        return times


class PoissonArrivals(ArrivalProcess):
    """Independent Poisson arrivals per client over a fixed horizon."""

    def __init__(self, rate_per_client: float, horizon: float, start_time: float = 0.0) -> None:
        if rate_per_client <= 0:
            raise ValueError("rate_per_client must be positive")
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        self._rate = float(rate_per_client)
        self._horizon = float(horizon)
        self._start = float(start_time)

    def generate(
        self, client_ids: Sequence[str], rng: np.random.Generator
    ) -> Dict[str, List[float]]:
        times: Dict[str, List[float]] = {}
        for client in client_ids:
            arrivals: List[float] = []
            current = self._start
            while True:
                current += float(rng.exponential(1.0 / self._rate))
                if current > self._start + self._horizon:
                    break
                arrivals.append(current)
            times[client] = arrivals
        return times


class BurstArrivals(ArrivalProcess):
    """Auction-app burst: all clients react to one broadcast event.

    A sensitive event (e.g. market volatility broadcast) occurs at
    ``event_time``; every client reacts after an independent reaction delay
    drawn from a log-normal distribution, then optionally sends a short
    follow-up burst of messages.
    """

    def __init__(
        self,
        event_time: float = 0.0,
        reaction_median: float = 100e-6,
        reaction_sigma: float = 0.5,
        followups: int = 0,
        followup_gap: float = 50e-6,
    ) -> None:
        if reaction_median <= 0:
            raise ValueError("reaction_median must be positive")
        if reaction_sigma < 0:
            raise ValueError("reaction_sigma must be non-negative")
        if followups < 0:
            raise ValueError("followups must be non-negative")
        if followup_gap <= 0:
            raise ValueError("followup_gap must be positive")
        self._event_time = float(event_time)
        self._median = float(reaction_median)
        self._sigma = float(reaction_sigma)
        self._followups = int(followups)
        self._followup_gap = float(followup_gap)

    @property
    def event_time(self) -> float:
        """True time of the broadcast event triggering the burst."""
        return self._event_time

    def generate(
        self, client_ids: Sequence[str], rng: np.random.Generator
    ) -> Dict[str, List[float]]:
        times: Dict[str, List[float]] = {}
        for client in client_ids:
            reaction = float(rng.lognormal(np.log(self._median), self._sigma))
            first = self._event_time + reaction
            burst = [first]
            for k in range(self._followups):
                burst.append(first + (k + 1) * self._followup_gap * float(rng.uniform(0.8, 1.2)))
            times[client] = burst
        return times
