"""Workload generators for auction-app scenarios.

The paper's motivating workloads are *auction-apps*: many clients reacting to
a shared sensitive event within a very small window of time (financial
exchanges responding to market volatility, ad exchanges, sneaker drops).
Arrival processes (:mod:`repro.workloads.arrivals`) model *when* events are
generated in true time; scenarios (:mod:`repro.workloads.scenario`) combine
arrivals with per-client clock-error distributions to produce the
timestamped message sets that sequencers consume and the evaluation harness
scores.
"""

from repro.workloads.arrivals import (
    ArrivalProcess,
    BurstArrivals,
    PoissonArrivals,
    UniformGapArrivals,
)
from repro.workloads.scenario import ClientSpec, Scenario, ScenarioConfig, build_scenario
from repro.workloads.multiregion import (
    DEFAULT_REGIONS,
    MultiRegionScenario,
    RegionProfile,
    build_multiregion_scenario,
)
from repro.workloads.cluster import (
    build_cluster_scenario,
    cluster_region_profiles,
    region_affine_policy,
)
from repro.workloads.learned import (
    LearnedWorkload,
    build_learned_workload,
    synthesize_probe,
)
from repro.workloads.chaos import (
    FAULT_NAMES,
    ChaosReport,
    ChaosSettings,
    run_chaos_scenario,
    standard_fault_schedule,
)

__all__ = [
    "FAULT_NAMES",
    "ChaosReport",
    "ChaosSettings",
    "run_chaos_scenario",
    "standard_fault_schedule",
    "ArrivalProcess",
    "UniformGapArrivals",
    "PoissonArrivals",
    "BurstArrivals",
    "ClientSpec",
    "Scenario",
    "ScenarioConfig",
    "build_scenario",
    "RegionProfile",
    "DEFAULT_REGIONS",
    "MultiRegionScenario",
    "build_multiregion_scenario",
    "build_cluster_scenario",
    "cluster_region_profiles",
    "region_affine_policy",
    "LearnedWorkload",
    "build_learned_workload",
    "synthesize_probe",
]
