"""Cluster-deployment scenarios: multi-region placement at shard scale.

Extends the multi-region model (:mod:`repro.workloads.multiregion`) to the
sharded-cluster setting: a configurable number of regions with progressively
worse clock synchronization and longer sequencer paths, plus helpers that
derive the region-affine sharding policy a cluster should use for the
generated placement.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.cluster.router import RegionAffineSharding
from repro.workloads.arrivals import ArrivalProcess, UniformGapArrivals
from repro.workloads.multiregion import (
    MultiRegionScenario,
    RegionProfile,
    build_multiregion_scenario,
)


def cluster_region_profiles(
    num_regions: int = 4,
    base_clock_std: float = 10e-3,
    base_delay: float = 2e-3,
) -> Tuple[RegionProfile, ...]:
    """Region profiles for a cluster deployment.

    Region 0 is the sequencer's home region (best-synchronized, shortest
    path); each further region roughly doubles clock error and one-way
    delay, and picks up a small synchronization bias — the asymmetric-path
    effect the multi-region module models.
    """
    if num_regions < 1:
        raise ValueError("num_regions must be at least 1")
    profiles = []
    for index in range(num_regions):
        scale = float(2**index)
        profiles.append(
            RegionProfile(
                name=f"region-{index}",
                clock_std=base_clock_std * scale,
                clock_bias=0.2 * base_clock_std * index,
                delay_median=base_delay * scale,
                delay_sigma=0.3,
                weight=1.0,
            )
        )
    return tuple(profiles)


def build_cluster_scenario(
    num_clients: int,
    num_regions: int = 4,
    arrivals: Optional[ArrivalProcess] = None,
    gap: float = 25e-3,
    messages_per_client: int = 2,
    seed: int = 0,
) -> MultiRegionScenario:
    """A shard-scale multi-region scenario.

    The default arrival process is a uniform-gap stream whose gap is of the
    same order as the regional clock errors, so cross-client orderings are
    genuinely uncertain and both the per-shard batching and the cross-shard
    merge have real work to do.
    """
    if arrivals is None:
        arrivals = UniformGapArrivals(
            messages_per_client=messages_per_client, gap=gap, jitter_fraction=0.3
        )
    return build_multiregion_scenario(
        num_clients,
        regions=cluster_region_profiles(num_regions),
        arrivals=arrivals,
        seed=seed,
    )


def region_affine_policy(placement: MultiRegionScenario) -> RegionAffineSharding:
    """The sharding policy matching a generated multi-region placement."""
    return RegionAffineSharding(placement.region_of)
