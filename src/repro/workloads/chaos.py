"""The chaos workload: a live sharded cluster under a fault schedule.

Unlike the offline replay workloads, this one drives the *full* live stack —
client endpoints with steppable clocks, per-client channels with fault
hooks, per-shard transports, the heartbeat-monitored sharded cluster with
exactly-once intake and streaming cross-shard merge, plus a probe-driven
learning loop — and injects a :class:`~repro.chaos.faults.FaultSchedule`
through the :class:`~repro.chaos.controller.ChaosController`.

:func:`standard_fault_schedule` maps a fault *name* and an *intensity* knob
onto concrete primitives sized relative to the run (clock spread, network
delay, message gap), so the chaos sweep can compare degradation across
fault families on one axis.  Everything is seeded: the same
``(fault, intensity, shards, clients, seed)`` tuple produces a
bit-identical :class:`ChaosReport`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.chaos.controller import ChaosController
from repro.chaos.faults import (
    ClockStep,
    DelaySpike,
    Fault,
    FaultSchedule,
    LinkPartition,
    MessageDuplication,
    MessageLoss,
    MessageReorder,
    ShardCrash,
    SyncBlackout,
)
from repro.clocks.drift import SteppedDrift
from repro.clocks.local import LocalClock
from repro.cluster.harness import ClusterTransport
from repro.cluster.merge import merge_fingerprint
from repro.cluster.sharded import ShardedSequencer
from repro.core.config import TommyConfig
from repro.distributions.parametric import GaussianDistribution
from repro.metrics.ras import rank_agreement_score
from repro.network.link import UniformJitterDelay
from repro.simulation.event_loop import EventLoop
from repro.simulation.random_source import RandomSource
from repro.workloads.arrivals import UniformGapArrivals
from repro.workloads.learned import synthesize_probe

#: Fault names understood by :func:`standard_fault_schedule`, in report order.
FAULT_NAMES = (
    "none",
    "partition",
    "blackhole",
    "loss",
    "duplication",
    "reorder",
    "delay",
    "clock_step",
    "blackout",
    "crash",
)


@dataclass(frozen=True)
class ChaosReport:
    """Deterministic outcome of one chaos run (no wall-clock fields)."""

    fault: str
    intensity: float
    shards: int
    clients: int
    seed: int
    messages_sent: int
    messages_delivered: int
    messages_lost: int
    messages_duplicated: int
    duplicates_suppressed: int
    messages_held: int
    messages_delayed: int
    clock_steps: int
    probes_suppressed: int
    distribution_refreshes: int
    failovers: int
    rejoins: int
    messages_replayed: int
    merged_batches: int
    merged_cross_shard: int
    pruned_pairs: int
    exactly_once: bool
    streaming_parity: Optional[bool]
    ras_normalized: float

    def as_row(self) -> Dict[str, object]:
        """Flat dictionary for report tables (identical for identical seeds)."""
        return {
            "fault": self.fault,
            "intensity": self.intensity,
            "shards": self.shards,
            "clients": self.clients,
            "sent": self.messages_sent,
            "delivered": self.messages_delivered,
            "lost": self.messages_lost,
            "duplicated": self.messages_duplicated,
            "dup_suppressed": self.duplicates_suppressed,
            "held": self.messages_held,
            "delayed": self.messages_delayed,
            "clock_steps": self.clock_steps,
            "probes_suppressed": self.probes_suppressed,
            "refreshes": self.distribution_refreshes,
            "failovers": self.failovers,
            "rejoins": self.rejoins,
            "replayed": self.messages_replayed,
            "batches": self.merged_batches,
            "merged_cross_shard": self.merged_cross_shard,
            "pruned_pairs": self.pruned_pairs,
            "exactly_once": self.exactly_once,
            "streaming_parity": self.streaming_parity,
            "ras_normalized": round(self.ras_normalized, 4),
        }


@dataclass(frozen=True)
class ChaosSettings:
    """Shape of the underlying healthy workload (faults come on top)."""

    num_clients: int = 24
    num_shards: int = 4
    messages_per_client: int = 4
    gap: float = 25e-3
    clock_std: float = 15e-3
    base_delay: float = 2e-3
    delay_jitter: float = 1e-3
    probes_per_client: int = 32
    heartbeat_interval: Optional[float] = None  # defaults to ``gap``
    seed: int = 7
    merge_topology: str = "flat"
    merge_fanout: int = 2

    def __post_init__(self) -> None:
        if self.num_clients < 2:
            raise ValueError("num_clients must be at least 2")
        if self.num_shards < 1:
            raise ValueError("num_shards must be at least 1")
        if self.messages_per_client < 1:
            raise ValueError("messages_per_client must be at least 1")


def standard_fault_schedule(
    fault: str,
    intensity: float,
    horizon: float,
    client_ids: Tuple[str, ...],
    settings: ChaosSettings,
) -> FaultSchedule:
    """The named fault family scaled by ``intensity`` over ``[0, horizon]``.

    Windows sit mid-run (so healthy behaviour brackets the fault), blast
    radii and magnitudes grow with ``intensity``, and magnitudes are sized
    relative to the workload (clock spread / network delay / message gap) so
    one intensity axis is comparable across fault families.
    """
    if fault not in FAULT_NAMES:
        raise ValueError(f"unknown fault {fault!r}; expected one of {FAULT_NAMES}")
    if intensity <= 0:
        raise ValueError(f"intensity must be positive, got {intensity!r}")
    if fault == "none":
        return FaultSchedule([])

    start = 0.3 * horizon
    duration = min((0.2 + 0.2 * intensity) * horizon, 0.65 * horizon)
    subset = client_ids[: max(2, math.ceil(len(client_ids) * min(0.25 * intensity, 0.75)))]
    faults: List[Fault] = []
    if fault == "partition":
        faults.append(LinkPartition(start=start, duration=duration, clients=subset, mode="hold"))
    elif fault == "blackhole":
        faults.append(LinkPartition(start=start, duration=duration, clients=subset, mode="drop"))
    elif fault == "loss":
        probability = min(0.15 * intensity, 0.9)
        faults.append(MessageLoss(start=start, duration=duration, probability=probability))
    elif fault == "duplication":
        probability = min(0.25 * intensity, 0.9)
        faults.append(MessageDuplication(start=start, duration=duration, probability=probability))
    elif fault == "reorder":
        faults.append(
            MessageReorder(start=start, duration=duration, jitter=2.0 * settings.gap * intensity)
        )
    elif fault == "delay":
        faults.append(
            DelaySpike(
                start=start,
                duration=duration,
                clients=subset,
                extra_delay=10.0 * settings.base_delay * intensity,
            )
        )
    elif fault == "clock_step":
        step = 4.0 * settings.clock_std * intensity
        faults.append(ClockStep(start=0.4 * horizon, clients=subset, step=step))
        faults.append(ClockStep(start=0.6 * horizon, clients=subset[:1], step=-0.5 * step))
    elif fault == "blackout":
        # a clock step the learning loop *cannot* see: probes black out over
        # the step, so refreshed distributions go stale exactly when needed
        step = 4.0 * settings.clock_std * intensity
        faults.append(ClockStep(start=0.4 * horizon, clients=subset, step=step))
        faults.append(SyncBlackout(start=0.3 * horizon, duration=0.6 * horizon, clients=subset))
    elif fault == "crash":
        if settings.num_shards < 2:
            raise ValueError("the crash fault needs at least 2 shards to fail over")
        heartbeat = settings.heartbeat_interval if settings.heartbeat_interval else settings.gap
        rejoin_after = max(0.25 * horizon, 8.0 * heartbeat)
        faults.append(
            ShardCrash(
                start=start, shard=settings.num_shards - 1, rejoin_after=rejoin_after
            )
        )
        if intensity >= 2.0 and settings.num_shards >= 3:
            faults.append(ShardCrash(start=0.55 * horizon, shard=0))
    return FaultSchedule(faults)


def run_chaos_scenario(
    fault: str = "partition",
    intensity: float = 1.0,
    settings: Optional[ChaosSettings] = None,
    streaming: bool = True,
    learning: bool = True,
    telemetry=None,
) -> ChaosReport:
    """Run one live cluster scenario under the named fault and score it.

    The merged cluster-wide order is scored (RAS) against the ground truth
    of the messages that *reached* it — lost messages are reported, not
    scored — and checked for exactly-once delivery plus streaming/offline
    merge parity.  Deterministic: same arguments, same report.

    ``telemetry`` (a :class:`repro.obs.Telemetry`) is measurement-only: it
    is threaded into every instrumented component but consumes no RNG draws
    and alters no scheduling, so the report is bit-identical with or without
    it (parity-tested in ``tests/obs``).
    """
    settings = settings if settings is not None else ChaosSettings()
    source = RandomSource(settings.seed)
    workload_rng = source.stream("chaos:workload")

    client_ids = tuple(f"client-{index:03d}" for index in range(settings.num_clients))
    distributions = {
        client_id: GaussianDistribution(
            float(workload_rng.normal(0.0, 0.1 * settings.clock_std)),
            max(float(workload_rng.uniform(0.4, 1.2)) * settings.clock_std, 1e-9),
        )
        for client_id in client_ids
    }
    arrivals = UniformGapArrivals(
        messages_per_client=settings.messages_per_client, gap=settings.gap, jitter_fraction=0.3
    ).generate(client_ids, workload_rng)
    horizon = max(max(times) for times in arrivals.values() if times)
    heartbeat = settings.heartbeat_interval if settings.heartbeat_interval else settings.gap
    schedule = standard_fault_schedule(fault, intensity, horizon, client_ids, settings)

    max_network_delay = 2.0 * (settings.base_delay + settings.delay_jitter)
    loop = EventLoop()
    cluster = ShardedSequencer(
        loop,
        distributions,
        num_shards=settings.num_shards,
        config=TommyConfig(
            completeness_mode="bounded_delay",
            max_network_delay=max_network_delay,
            seed=settings.seed,
        ),
        heartbeat_interval=heartbeat,
        heartbeat_timeout=3.0 * heartbeat,
        streaming_merge=streaming,
        dedupe_intake=True,
        telemetry=telemetry,
        merge_topology=settings.merge_topology,
        merge_fanout=settings.merge_fanout,
    )
    transport = ClusterTransport(loop, cluster, source.stream, telemetry=telemetry)
    drifts: Dict[str, SteppedDrift] = {}
    controller = ChaosController(
        loop, schedule, seed=source.spawn("chaos:faults").seed, telemetry=telemetry
    )
    for client_id in client_ids:
        drift = SteppedDrift()
        drifts[client_id] = drift
        clock = LocalClock(
            loop,
            distributions[client_id],
            source.stream(f"clock:{client_id}"),
            drift=drift,
        )
        transport.add_client(
            client_id,
            clock,
            delay_model=UniformJitterDelay(settings.base_delay, settings.delay_jitter),
            ordered=True,
        )
        controller.register_clock(client_id, drift)
    transport.install_chaos(controller)
    controller.arm()

    endpoints = transport.clients()
    for client_id, times in arrivals.items():
        for when in times:
            loop.schedule_at(when, endpoints[client_id].send, None)

    if learning:
        cluster.attach_learning(method="empirical", window=64, refresh_every=8)
        probe_rng = source.stream("chaos:probes")
        probe_gap = max(horizon, 1e-9) / settings.probes_per_client

        def feed_probe(client_id: str, when: float) -> None:
            if not controller.probe_allowed(client_id, when):
                return
            offset = float(distributions[client_id].sample(probe_rng))
            offset += drifts[client_id].offset_at(when)
            round_trip = 2.0 * settings.base_delay * float(probe_rng.uniform(0.8, 1.2))
            cluster.observe_probe(synthesize_probe(client_id, offset, round_trip, when=when))

        for client_id in client_ids:
            for index in range(settings.probes_per_client):
                when = (index + 0.5) * probe_gap
                loop.schedule_at(when, feed_probe, client_id, when)

    end = max(horizon, schedule.horizon) + max_network_delay + 10.0 * settings.gap
    loop.run(until=end)
    cluster.flush()

    merge = cluster.merge()
    streaming_parity: Optional[bool] = None
    if streaming:
        live = cluster.live_merge()
        streaming_parity = merge_fingerprint(live) == merge_fingerprint(merge)

    merged_keys = [
        message.key for batch in merge.result.batches for message in batch.messages
    ]
    delivered_keys = set(merged_keys)
    sent_messages = [
        message
        for client_id in client_ids
        for message in endpoints[client_id].sent_messages
    ]
    delivered_messages = [message for message in sent_messages if message.key in delivered_keys]
    ras = rank_agreement_score(merge.result, delivered_messages)

    stats = controller.stats
    obs_report = cluster.observability_report()
    cluster_snapshot = obs_report["cluster"]
    learning_snapshot = obs_report["learning"]
    return ChaosReport(
        fault=fault,
        intensity=float(intensity),
        shards=settings.num_shards,
        clients=settings.num_clients,
        seed=settings.seed,
        messages_sent=len(sent_messages),
        messages_delivered=len(delivered_messages),
        messages_lost=len(sent_messages) - len(delivered_messages),
        messages_duplicated=stats.messages_duplicated,
        duplicates_suppressed=int(cluster_snapshot["duplicates_suppressed"]),
        messages_held=stats.messages_held,
        messages_delayed=stats.messages_delayed,
        clock_steps=stats.clock_steps,
        probes_suppressed=stats.probes_suppressed,
        distribution_refreshes=int(learning_snapshot["distribution_refreshes"]),
        failovers=int(cluster_snapshot["failovers"]),
        rejoins=int(cluster_snapshot["rejoins"]),
        messages_replayed=sum(event.messages_replayed for event in cluster.failover_events),
        merged_batches=merge.batch_count,
        merged_cross_shard=merge.merged_cross_shard,
        pruned_pairs=merge.cross_pairs_pruned,
        exactly_once=len(merged_keys) == len(delivered_keys),
        streaming_parity=streaming_parity,
        ras_normalized=ras.normalized_score,
    )
