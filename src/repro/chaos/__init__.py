"""Deterministic fault injection for the fair-sequencing cluster.

``repro.chaos`` turns the healthy-network evaluation harness into a chaos
harness: a :class:`FaultSchedule` composes timed, seeded fault primitives
(link partitions, loss, duplication, reordering, delay spikes, clock steps,
sync-probe blackouts, shard crash/rejoin) and a :class:`ChaosController`
arms the schedule against a live run — hooking the per-client channels, the
clients' drift models and the sharded cluster.  Same schedule + same seed =
bit-identical run.

See :mod:`repro.workloads.chaos` for the packaged chaos workload and
:mod:`repro.experiments.chaos_sweep` for the fault × intensity × shards
scenario matrix behind ``python -m repro.cli chaos``.
"""

from repro.chaos.controller import ChaosController, ChaosStats, FaultDecision
from repro.chaos.faults import (
    ClientFault,
    ClockStep,
    DelaySpike,
    Fault,
    FaultSchedule,
    LinkPartition,
    MessageDuplication,
    MessageLoss,
    MessageReorder,
    ShardCrash,
    SyncBlackout,
)

__all__ = [
    "ChaosController",
    "ChaosStats",
    "ClientFault",
    "ClockStep",
    "DelaySpike",
    "Fault",
    "FaultDecision",
    "FaultSchedule",
    "LinkPartition",
    "MessageDuplication",
    "MessageLoss",
    "MessageReorder",
    "ShardCrash",
    "SyncBlackout",
]
