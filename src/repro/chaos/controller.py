"""The chaos controller: arms a fault schedule against a live run.

The controller is the only stateful piece of the chaos subsystem.  It owns a
seeded RNG (all loss/duplication/jitter draws flow from it, in event-loop
order, so a run is reproducible bit-for-bit from the seed), interprets the
:class:`~repro.chaos.faults.FaultSchedule` at three injection points, and
counts everything it does in :class:`ChaosStats`:

* **channels** — :meth:`channel_hook` returns the per-client hook a
  :class:`~repro.network.channel.Channel` consults on every send
  (:meth:`~repro.network.transport.Transport.install_chaos` wires it);
* **clocks** — registered :class:`~repro.clocks.drift.SteppedDrift` models
  receive their :class:`~repro.chaos.faults.ClockStep` offsets at arm time;
* **cluster** — :class:`~repro.chaos.faults.ShardCrash` faults schedule
  crash (and optional rejoin) events on the loop against the attached
  :class:`~repro.cluster.sharded.ShardedSequencer`.

Sync-probe blackouts are pull-based: whatever drives probes asks
:meth:`probe_allowed` before feeding each one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.chaos.faults import (
    ClientFault,
    DelaySpike,
    FaultSchedule,
    LinkPartition,
    MessageDuplication,
    MessageLoss,
    MessageReorder,
    ShardCrash,
)
from repro.clocks.drift import SteppedDrift
from repro.network.message import Heartbeat, TimestampedMessage
from repro.obs.telemetry import Telemetry, resolve
from repro.simulation.event_loop import EventLoop

Item = Union[TimestampedMessage, Heartbeat]


@dataclass(frozen=True)
class FaultDecision:
    """What the channel should do with one send.

    ``copies`` counts total deliveries (1 = normal); ``extra_delay`` adds to
    every copy's sampled delay; ``not_before`` floors the delivery time (the
    hold-mode partition's heal time).
    """

    drop: bool = False
    copies: int = 1
    extra_delay: float = 0.0
    not_before: Optional[float] = None


@dataclass
class ChaosStats:
    """Counters for every injected fault effect (messages only, not heartbeats)."""

    messages_dropped: int = 0
    messages_held: int = 0
    messages_duplicated: int = 0
    messages_delayed: int = 0
    clock_steps: int = 0
    probes_suppressed: int = 0
    shard_crashes: int = 0
    shard_rejoins: int = 0
    heartbeats_dropped: int = 0
    per_kind: Dict[str, int] = field(default_factory=dict)

    def count(self, kind: str, amount: int = 1) -> None:
        """Bump the per-fault-kind activation counter."""
        self.per_kind[kind] = self.per_kind.get(kind, 0) + amount

    def as_dict(self) -> Dict[str, object]:
        """Flat view for reports and result metadata."""
        return {
            "messages_dropped": self.messages_dropped,
            "messages_held": self.messages_held,
            "messages_duplicated": self.messages_duplicated,
            "messages_delayed": self.messages_delayed,
            "clock_steps": self.clock_steps,
            "probes_suppressed": self.probes_suppressed,
            "shard_crashes": self.shard_crashes,
            "shard_rejoins": self.shard_rejoins,
            "heartbeats_dropped": self.heartbeats_dropped,
        }


class ChaosController:
    """Interprets one :class:`FaultSchedule` against one simulated run."""

    def __init__(
        self,
        loop: EventLoop,
        schedule: FaultSchedule,
        seed: int = 0,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self._loop = loop
        self._schedule = schedule
        self._rng = np.random.default_rng(int(seed))
        self._clocks: Dict[str, SteppedDrift] = {}
        self._cluster = None
        self._armed = False
        self.stats = ChaosStats()
        self._obs = resolve(telemetry)
        if self._obs.enabled:
            self._obs.attach("chaos", self.stats)

    @property
    def schedule(self) -> FaultSchedule:
        """The fault schedule being interpreted."""
        return self._schedule

    @property
    def armed(self) -> bool:
        """Whether :meth:`arm` has run."""
        return self._armed

    # ------------------------------------------------------------------ wiring
    def register_clock(self, client_id: str, drift: SteppedDrift) -> None:
        """Register the client's steppable drift model (clock-step target)."""
        self._clocks[client_id] = drift

    def attach_cluster(self, cluster) -> None:
        """Attach the cluster shard-crash faults act on.

        ``cluster`` must expose ``fail_shard`` / ``force_failover`` /
        ``rejoin_shard`` plus a ``router`` and ``shards`` view — the
        :class:`~repro.cluster.sharded.ShardedSequencer` interface.
        """
        self._cluster = cluster

    def arm(self) -> None:
        """Install clock steps and schedule shard crash/rejoin events.

        Channel faults need no arming: the per-send hook evaluates the
        schedule windows directly against the loop clock.  Arming twice is
        an error (it would double-install the clock steps).
        """
        if self._armed:
            raise ValueError("controller is already armed")
        self._armed = True
        for fault in self._schedule.clock_faults:
            targets = fault.clients if fault.clients else tuple(sorted(self._clocks))
            for client_id in targets:
                drift = self._clocks.get(client_id)
                if drift is None:
                    raise KeyError(
                        f"clock step targets client {client_id!r} but no SteppedDrift "
                        "was registered for it"
                    )
                drift.add_step(fault.start, fault.step)
                self.stats.clock_steps += 1
                self.stats.count(fault.kind)
                if self._obs.enabled:
                    self._obs.event(
                        "fault", fault.kind, fault.start, client_id=client_id, step=fault.step
                    )
        for fault in self._schedule.shard_faults:
            if self._cluster is None:
                raise ValueError("shard faults scheduled but no cluster attached")
            if fault.shard >= self._cluster.num_shards:
                raise ValueError(
                    f"shard fault targets shard {fault.shard} but the cluster "
                    f"has {self._cluster.num_shards}"
                )
            self._loop.schedule_at(
                max(fault.start, self._loop.now), self._crash, fault, label="chaos"
            )

    # ----------------------------------------------------------- shard faults
    def _crash(self, fault: ShardCrash) -> None:
        victims = tuple(self._cluster.router.clients_of(fault.shard))
        self._cluster.fail_shard(fault.shard)
        self.stats.shard_crashes += 1
        self.stats.count(fault.kind)
        if self._obs.enabled:
            self._obs.event("fault", "shard_crash", self._loop.now, shard=fault.shard)
        if fault.rejoin_after is not None:
            self._loop.schedule_at(
                fault.start + fault.rejoin_after, self._rejoin, fault, victims, label="chaos"
            )

    def _rejoin(self, fault: ShardCrash, victims: Tuple[str, ...]) -> None:
        # rejoin_shard itself completes the failover first when the rejoin
        # arrives before the heartbeat monitor noticed the crash
        self._cluster.rejoin_shard(fault.shard, clients=victims)
        self.stats.shard_rejoins += 1
        if self._obs.enabled:
            self._obs.event("fault", "shard_rejoin", self._loop.now, shard=fault.shard)

    # ---------------------------------------------------------- channel faults
    def channel_hook(self, client_id: str) -> Callable[[Item, float], Optional[FaultDecision]]:
        """The per-send fault hook for ``client_id``'s channel.

        Resolution over active faults hitting the client: a drop-mode
        partition or a loss draw drops the send outright (no further
        draws); otherwise hold-mode partitions floor the delivery at the
        latest heal time while duplication and the delay faults compose.
        """
        # the schedule is immutable: filter once per hook, not per send
        client_faults = [
            fault for fault in self._schedule.channel_faults if fault.applies_to(client_id)
        ]

        def decide(item: Item, now: float) -> Optional[FaultDecision]:
            active: List[ClientFault] = [fault for fault in client_faults if fault.active_at(now)]
            if not active:
                return None
            is_message = isinstance(item, TimestampedMessage)
            # drop resolution first: a send killed by a partition or a loss
            # draw must not consume duplication/jitter draws (nor count
            # duplicated copies that never reach the wire)
            for fault in active:
                if isinstance(fault, LinkPartition) and fault.mode == "drop":
                    self._note_drop(is_message, fault.kind, client_id, now)
                    return FaultDecision(drop=True)
                if isinstance(fault, MessageLoss) and self._rng.random() < fault.probability:
                    self._note_drop(is_message, fault.kind, client_id, now)
                    return FaultDecision(drop=True)
            copies = 1
            extra_delay = 0.0
            not_before: Optional[float] = None
            for fault in active:
                if isinstance(fault, LinkPartition):  # mode == "hold"
                    not_before = fault.end if not_before is None else max(not_before, fault.end)
                elif isinstance(fault, MessageDuplication):
                    if self._rng.random() < fault.probability:
                        copies += fault.copies
                        if is_message:
                            self.stats.messages_duplicated += fault.copies
                        self.stats.count(fault.kind, fault.copies)
                        if self._obs.enabled:
                            self._obs.event(
                                "fault", fault.kind, now, client_id=client_id, copies=fault.copies
                            )
                elif isinstance(fault, MessageReorder):
                    extra_delay += float(self._rng.uniform(0.0, fault.jitter))
                    if is_message:
                        self.stats.messages_delayed += 1
                    self.stats.count(fault.kind)
                    if self._obs.enabled:
                        self._obs.event("fault", fault.kind, now, client_id=client_id)
                elif isinstance(fault, DelaySpike):
                    extra_delay += fault.extra_delay
                    if is_message:
                        self.stats.messages_delayed += 1
                    self.stats.count(fault.kind)
                    if self._obs.enabled:
                        self._obs.event("fault", fault.kind, now, client_id=client_id)
            if not_before is not None and is_message:
                self.stats.messages_held += 1
                self.stats.count("partition")
                if self._obs.enabled:
                    self._obs.event(
                        "fault", "partition_hold", now, client_id=client_id, until=not_before
                    )
            return FaultDecision(copies=copies, extra_delay=extra_delay, not_before=not_before)

        return decide

    def _note_drop(self, is_message: bool, kind: str, client_id: str, now: float) -> None:
        if is_message:
            self.stats.messages_dropped += 1
        else:
            self.stats.heartbeats_dropped += 1
        self.stats.count(kind)
        if self._obs.enabled:
            self._obs.event("fault", kind, now, client_id=client_id, dropped_message=is_message)

    # ------------------------------------------------------------ probe faults
    def probe_allowed(self, client_id: str, now: Optional[float] = None) -> bool:
        """Whether a sync probe from ``client_id`` survives right now.

        Probe drivers call this before each
        :meth:`~repro.cluster.sharded.ShardedSequencer.observe_probe`;
        a suppressed probe is counted and must simply not be fed.
        """
        when = self._loop.now if now is None else float(now)
        for fault in self._schedule.probe_faults:
            if fault.active_at(when) and fault.applies_to(client_id):
                self.stats.probes_suppressed += 1
                self.stats.count(fault.kind)
                if self._obs.enabled:
                    self._obs.event("fault", "probe_suppressed", when, client_id=client_id)
                return False
        return True
