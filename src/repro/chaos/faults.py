"""Composable, deterministic fault primitives and the schedule holding them.

A fault is a *declarative* description of one degradation window — which
clients (or shard) it hits, when it starts and how long it lasts.  The
primitives cover the failure modes a cloud deployment of the fair sequencer
actually sees:

* :class:`LinkPartition` — a client's link to its shard goes dark; traffic
  is either dropped or held and flushed at heal time.
* :class:`MessageLoss` / :class:`MessageDuplication` — per-message loss and
  duplication processes on the client channels.
* :class:`MessageReorder` — random per-message extra delay (cross-client
  reordering at the sequencer; per-client FIFO survives ordered channels).
* :class:`DelaySpike` — a deterministic latency step (congestion episode).
* :class:`ClockStep` — a client's clock jumps by a fixed amount (failed
  sync, VM migration, leap-second style events).
* :class:`SyncBlackout` — the client's sync-probe stream goes silent, so a
  live-learning pipeline works from stale observations.
* :class:`ShardCrash` — a shard process dies mid-stream (exercising
  heartbeat failover and pending replay) and optionally rejoins later.

Primitives carry no behaviour: the
:class:`~repro.chaos.controller.ChaosController` interprets a
:class:`FaultSchedule` against the simulation event loop, so the same
schedule replayed with the same seed produces an identical run.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union


@dataclass(frozen=True, kw_only=True)
class Fault:
    """Base fault: a half-open activity window ``[start, start + duration)``.

    ``duration`` defaults to zero, which instantaneous faults (e.g.
    :class:`ClockStep`) use; windowed faults must set it positive.
    """

    start: float
    duration: float = 0.0

    #: short identifier used in reports and stats
    kind: str = "fault"

    def __post_init__(self) -> None:
        if not math.isfinite(self.start) or self.start < 0:
            raise ValueError(f"start must be finite and non-negative, got {self.start!r}")
        if not math.isfinite(self.duration) or self.duration < 0:
            raise ValueError(f"duration must be finite and non-negative, got {self.duration!r}")

    @property
    def end(self) -> float:
        """The first instant at which the fault is no longer active."""
        return self.start + self.duration

    def active_at(self, now: float) -> bool:
        """Whether the fault window covers true time ``now``."""
        return self.start <= now < self.end


@dataclass(frozen=True, kw_only=True)
class ClientFault(Fault):
    """A fault scoped to a set of clients (empty tuple = every client)."""

    clients: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(self, "clients", tuple(self.clients))

    def applies_to(self, client_id: str) -> bool:
        """Whether ``client_id`` is in the fault's blast radius."""
        return not self.clients or client_id in self.clients


@dataclass(frozen=True, kw_only=True)
class LinkPartition(ClientFault):
    """The affected clients' links go dark for the window.

    ``mode="hold"`` models a partition that heals: traffic sent during the
    window is buffered by the network and delivered (FIFO, after its normal
    sampled delay) no earlier than the heal time.  ``mode="drop"`` models a
    hard partition: everything sent during the window is lost.
    """

    mode: str = "hold"
    kind: str = "partition"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.mode not in ("hold", "drop"):
            raise ValueError(f"mode must be 'hold' or 'drop', got {self.mode!r}")
        if self.duration <= 0:
            raise ValueError("a partition needs a positive duration")


@dataclass(frozen=True, kw_only=True)
class MessageLoss(ClientFault):
    """Each affected send is independently dropped with ``probability``."""

    probability: float = 0.5
    kind: str = "loss"

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability!r}")


@dataclass(frozen=True, kw_only=True)
class MessageDuplication(ClientFault):
    """Each affected send is independently duplicated with ``probability``.

    A duplicated send delivers ``1 + copies`` identical items, each with its
    own sampled network delay.
    """

    probability: float = 0.5
    copies: int = 1
    kind: str = "duplication"

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability!r}")
        if self.copies < 1:
            raise ValueError(f"copies must be at least 1, got {self.copies!r}")


@dataclass(frozen=True, kw_only=True)
class MessageReorder(ClientFault):
    """Each affected send picks up uniform extra delay in ``[0, jitter)``.

    On ordered channels the per-client FIFO survives (head-of-line
    blocking); *cross-client* arrival order at the sequencer scrambles,
    which is the reordering the probabilistic sequencer must absorb.
    """

    jitter: float = 0.01
    kind: str = "reorder"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.jitter <= 0:
            raise ValueError(f"jitter must be positive, got {self.jitter!r}")


@dataclass(frozen=True, kw_only=True)
class DelaySpike(ClientFault):
    """Every affected send is delayed by an extra ``extra_delay`` seconds."""

    extra_delay: float = 0.01
    kind: str = "delay"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.extra_delay <= 0:
            raise ValueError(f"extra_delay must be positive, got {self.extra_delay!r}")


@dataclass(frozen=True, kw_only=True)
class ClockStep(ClientFault):
    """The affected clients' clocks jump by ``step`` seconds at ``start``.

    The step is permanent (the clock stays offset until another step
    compensates) and applies to every read at true time >= ``start`` —
    installed on the clients' :class:`~repro.clocks.drift.SteppedDrift`
    models when the controller arms, so query order cannot perturb it.
    """

    step: float = 0.0
    kind: str = "clock_step"

    def __post_init__(self) -> None:
        super().__post_init__()
        if not math.isfinite(self.step) or self.step == 0.0:
            raise ValueError(f"step must be finite and non-zero, got {self.step!r}")


@dataclass(frozen=True, kw_only=True)
class SyncBlackout(ClientFault):
    """The affected clients' sync-probe streams go silent for the window."""

    kind: str = "blackout"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.duration <= 0:
            raise ValueError("a sync blackout needs a positive duration")


@dataclass(frozen=True, kw_only=True)
class ShardCrash(Fault):
    """Shard ``shard`` crashes at ``start``; optionally rejoins later.

    The crash stops the shard's heartbeats and emission; the cluster's
    heartbeat monitor detects the silence and fails the shard over (client
    drain + pending replay).  With ``rejoin_after`` set, the shard rejoins
    ``rejoin_after`` seconds after the crash with a fresh sequencer process
    and reclaims the clients it owned at crash time — ``rejoin_after``
    should exceed the cluster's heartbeat timeout so detection happens
    first (the controller forces the failover otherwise).
    """

    shard: int = 0
    rejoin_after: Optional[float] = None
    kind: str = "crash"

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.shard < 0:
            raise ValueError(f"shard must be non-negative, got {self.shard!r}")
        if self.rejoin_after is not None and self.rejoin_after <= 0:
            raise ValueError(f"rejoin_after must be positive, got {self.rejoin_after!r}")


#: Faults interpreted by the channel hook (loss, duplication, delay, ...).
ChannelFault = Union[LinkPartition, MessageLoss, MessageDuplication, MessageReorder, DelaySpike]


class FaultSchedule:
    """An immutable, start-time-ordered composition of fault primitives.

    The schedule is pure data; arm it against a run with a
    :class:`~repro.chaos.controller.ChaosController`.  Primitives may
    overlap arbitrarily — the controller resolves the per-message
    interaction (partitions trump loss, loss trumps duplication, delays
    compose additively).
    """

    def __init__(self, faults: Sequence[Fault] = ()) -> None:
        for fault in faults:
            if not isinstance(fault, Fault):
                raise TypeError(f"not a Fault: {fault!r}")
        self._faults: Tuple[Fault, ...] = tuple(
            sorted(faults, key=lambda fault: (fault.start, fault.kind))
        )

    @property
    def faults(self) -> Tuple[Fault, ...]:
        """All faults, ordered by start time."""
        return self._faults

    def __len__(self) -> int:
        return len(self._faults)

    def __iter__(self):
        return iter(self._faults)

    @property
    def horizon(self) -> float:
        """Latest end time over all faults (0 for an empty schedule)."""
        horizon = 0.0
        for fault in self._faults:
            horizon = max(horizon, fault.end)
            if isinstance(fault, ShardCrash) and fault.rejoin_after is not None:
                horizon = max(horizon, fault.start + fault.rejoin_after)
        return horizon

    @property
    def channel_faults(self) -> List[ClientFault]:
        """Faults the per-channel hook interprets, in schedule order."""
        channel_kinds = (LinkPartition, MessageLoss, MessageDuplication, MessageReorder, DelaySpike)
        return [fault for fault in self._faults if isinstance(fault, channel_kinds)]

    @property
    def clock_faults(self) -> List[ClockStep]:
        """Clock-step faults, in schedule order."""
        return [fault for fault in self._faults if isinstance(fault, ClockStep)]

    @property
    def probe_faults(self) -> List[SyncBlackout]:
        """Sync-probe blackouts, in schedule order."""
        return [fault for fault in self._faults if isinstance(fault, SyncBlackout)]

    @property
    def shard_faults(self) -> List[ShardCrash]:
        """Shard crash/rejoin faults, in schedule order."""
        return [fault for fault in self._faults if isinstance(fault, ShardCrash)]

    def describe(self) -> List[str]:
        """One human-readable line per fault (for reports and logs)."""
        lines = []
        for fault in self._faults:
            window = f"[{fault.start:g}, {fault.end:g})" if fault.duration else f"@{fault.start:g}"
            scope = ""
            if isinstance(fault, ClientFault):
                scope = f" clients={','.join(fault.clients)}" if fault.clients else " clients=*"
            elif isinstance(fault, ShardCrash):
                scope = f" shard={fault.shard}"
                if fault.rejoin_after is not None:
                    scope += f" rejoin_after={fault.rejoin_after:g}"
            lines.append(f"{fault.kind} {window}{scope}")
        return lines
