"""repro: a reproduction of "Beyond Lamport, Towards Probabilistic Fair Ordering".

The package implements Tommy, a probabilistic fair sequencer, together with
every substrate it needs: a discrete-event simulator, clock and clock-drift
models, clock-offset distributions (parametric and learned), a
clock-synchronization probe protocol, a network substrate with ordered and
unordered channels, baseline sequencers (FIFO, WaitsForOne, TrueTime,
Lamport, oracle), auction-app workloads, downstream applications (limit
order book, sealed-bid auction, replicated log), fairness metrics (Rank
Agreement Score and friends), the experiment harness that regenerates the
paper's evaluation, a sharded fair-sequencing cluster
(:mod:`repro.cluster`) that scales the online sequencer out over many shards
with a probabilistic cross-shard merge, and a deterministic fault-injection
chaos subsystem (:mod:`repro.chaos`) that measures all of it under
partitions, loss, duplication, reordering, delay spikes, clock steps,
sync blackouts and shard crash/rejoin.

Quickstart
----------
>>> from repro import quick_sequence
>>> from repro.distributions import GaussianDistribution
>>> from repro.network.message import TimestampedMessage
>>> dists = {"a": GaussianDistribution(0, 1.0), "b": GaussianDistribution(0, 1.0)}
>>> messages = [
...     TimestampedMessage(client_id="a", timestamp=10.0, true_time=10.0),
...     TimestampedMessage(client_id="b", timestamp=17.0, true_time=17.0),
... ]
>>> result = quick_sequence(messages, dists)
>>> result.batch_count
2

Learned distributions (paper §3.3, §5)
--------------------------------------
Clients learn their offset distribution ``f_theta`` from sync probes and
refresh the *running* sequencer live; the engine serves the learned
(empirical) estimates through vectorized difference-CDF tables:

>>> from repro.core.online import OnlineTommySequencer
>>> from repro.simulation import EventLoop
>>> from repro.sync import DistributionRefreshLoop
>>> from repro.workloads import synthesize_probe
>>> loop = EventLoop()
>>> online = OnlineTommySequencer(
...     loop, {"a": GaussianDistribution(0, 10.0), "b": GaussianDistribution(0, 10.0)}
... )
>>> refresh = DistributionRefreshLoop(online, refresh_every=8, min_observations=8)
>>> for k in range(8):
...     _ = refresh.observe_probe(
...         synthesize_probe("a", offset=0.001 * k, round_trip=0.0001)
...     )
>>> online.distribution_refreshes
1
>>> online.model.distribution_for("a").family
'empirical'
"""

from typing import Dict, Optional, Sequence

from repro.core import (
    ByzantineAuditor,
    FairTotalOrder,
    LikelyHappenedBefore,
    OnlineTommySequencer,
    PrecedenceModel,
    TommyConfig,
    TommySequencer,
)
from repro.cluster import (
    CrossShardMerger,
    HashSharding,
    LoadAwareSharding,
    RegionAffineSharding,
    ShardedSequencer,
    ShardRouter,
)
from repro.distributions import GaussianDistribution, OffsetDistribution
from repro.metrics import rank_agreement_score
from repro.network.message import Heartbeat, SequencedBatch, TimestampedMessage
from repro.sequencers import (
    FifoSequencer,
    OracleSequencer,
    SequencingResult,
    TrueTimeSequencer,
    WaitsForOneSequencer,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "TommyConfig",
    "TommySequencer",
    "OnlineTommySequencer",
    "PrecedenceModel",
    "LikelyHappenedBefore",
    "FairTotalOrder",
    "ByzantineAuditor",
    "OffsetDistribution",
    "GaussianDistribution",
    "TimestampedMessage",
    "Heartbeat",
    "SequencedBatch",
    "SequencingResult",
    "FifoSequencer",
    "WaitsForOneSequencer",
    "TrueTimeSequencer",
    "OracleSequencer",
    "rank_agreement_score",
    "quick_sequence",
    "ShardRouter",
    "ShardedSequencer",
    "CrossShardMerger",
    "HashSharding",
    "RegionAffineSharding",
    "LoadAwareSharding",
]


def quick_sequence(
    messages: Sequence[TimestampedMessage],
    client_distributions: Dict[str, OffsetDistribution],
    threshold: float = 0.75,
    config: Optional[TommyConfig] = None,
) -> SequencingResult:
    """One-call fair sequencing of ``messages`` with Tommy.

    Parameters
    ----------
    messages:
        The timestamped messages to order.
    client_distributions:
        Clock-error distribution (of ``reported - true`` time) per client.
    threshold:
        Batch-boundary confidence threshold (ignored when ``config`` given).
    config:
        Full :class:`TommyConfig` overriding ``threshold``.
    """
    config = config if config is not None else TommyConfig(threshold=threshold)
    sequencer = TommySequencer(client_distributions=client_distributions, config=config)
    return sequencer.sequence(list(messages))
