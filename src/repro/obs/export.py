"""Telemetry exporters: Chrome ``trace_event`` files and JSON snapshots.

The trace exporter emits the Chrome/perfetto ``trace_event`` format
(https://ui.perfetto.dev loads the output directly): one process track per
shard plus one for the client fleet and one for the merge pipeline, one
thread track per client, duration ("X") slices for each stage-to-stage hop
of every message and instant ("i") events for faults, refreshes and
dedupe-gate hits.  Timestamps are *simulated* microseconds, so the timeline
matches the discrete-event schedule rather than host jitter.

With ``wall_tracks=True`` the exporter emits a second family of process
tracks (named ``wall:...``) whose timestamps come from the wall-clock
stamps instead — on Linux ``time.perf_counter()`` is CLOCK_MONOTONIC and
therefore comparable across worker processes, so a real-process backend run
shows its genuine concurrency on the wall tracks right next to the shared
sim-time tracks (the instrument for the sim-vs-procs runtime comparison).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from repro.obs.spans import message_timelines, stage_latency_rows
from repro.obs.telemetry import Telemetry

#: pid used for tracks that belong to no particular shard.
_CLIENTS_PID = 1
_MERGE_PID = 2
_CONTROL_PID = 3
_SHARD_PID_BASE = 10
#: pid offset of the wall-clock mirror tracks (``wall_tracks=True``).
_WALL_PID_OFFSET = 100

#: Stages whose slice belongs on the client track rather than a shard track.
_CLIENT_STAGES = frozenset({"client_send", "channel_deliver"})
_MERGE_STAGES = frozenset({"merge_observe", "merge_commit"})


def _micros(sim_time: float) -> float:
    return sim_time * 1e6


def _pid_for(stage: str, shard: Optional[int]) -> int:
    if stage in _CLIENT_STAGES:
        return _CLIENTS_PID
    if stage in _MERGE_STAGES:
        return _MERGE_PID
    if shard is not None:
        return _SHARD_PID_BASE + shard
    return _CONTROL_PID


def chrome_trace_events(
    telemetry: Telemetry, wall_tracks: bool = False
) -> List[Dict[str, object]]:
    """Render the recorded telemetry as a list of ``trace_event`` dicts.

    Deterministic for a fixed seed: events are derived from the sim-time
    projection only (wall-clock stamps are carried in ``args`` for human
    inspection but never drive ordering or timestamps).  ``wall_tracks``
    adds a mirror set of ``wall:...`` process tracks timed by the wall
    stamps (rebased to the run's earliest stamp), which *are* host-timing
    dependent by design — they exist to show the real overlap of a
    multi-process run against the shared simulated schedule.
    """
    events: List[Dict[str, object]] = []
    pids_seen: Dict[int, str] = {}
    tids_seen: Dict[Tuple[int, int], str] = {}
    client_tids: Dict[str, int] = {}
    wall_origin = min(
        (record.wall_time for record in telemetry.stage_records), default=0.0
    )

    def tid_for(client_id: Optional[str]) -> int:
        if client_id is None:
            return 0
        tid = client_tids.get(client_id)
        if tid is None:
            tid = client_tids[client_id] = len(client_tids) + 1
        return tid

    def note_track(pid: int, pid_name: str, tid: int, tid_name: str) -> None:
        pids_seen.setdefault(pid, pid_name)
        tids_seen.setdefault((pid, tid), tid_name)

    for (client_id, sequence), timeline in sorted(
        message_timelines(telemetry.stage_records).items()
    ):
        tid = tid_for(client_id)
        for earlier, later in zip(timeline, timeline[1:]):
            shard = later.shard if later.shard is not None else earlier.shard
            pid = _pid_for(later.stage, shard)
            pid_name = (
                "clients"
                if pid == _CLIENTS_PID
                else "merge"
                if pid == _MERGE_PID
                else "control"
                if pid == _CONTROL_PID
                else f"shard-{pid - _SHARD_PID_BASE}"
            )
            note_track(pid, pid_name, tid, client_id)
            args = {
                "client": client_id,
                "sequence": sequence,
                "shard": shard,
                "wall_ms": round((later.wall_time - earlier.wall_time) * 1e3, 6),
            }
            events.append(
                {
                    "name": later.stage,
                    "cat": "lifecycle",
                    "ph": "X",
                    "ts": _micros(earlier.sim_time),
                    "dur": _micros(later.sim_time - earlier.sim_time),
                    "pid": pid,
                    "tid": tid,
                    "args": args,
                }
            )
            if wall_tracks:
                wall_pid = pid + _WALL_PID_OFFSET
                note_track(wall_pid, f"wall:{pid_name}", tid, client_id)
                events.append(
                    {
                        "name": later.stage,
                        "cat": "lifecycle-wall",
                        "ph": "X",
                        "ts": _micros(earlier.wall_time - wall_origin),
                        "dur": _micros(max(later.wall_time - earlier.wall_time, 0.0)),
                        "pid": wall_pid,
                        "tid": tid,
                        "args": args,
                    }
                )

    for record in telemetry.event_records:
        if record.kind == "merge_tree":
            # per-level tree-merge pricing events land on the merge process so
            # the perfetto timeline shows one named row per tree level
            pid, pid_name = _MERGE_PID, "merge"
        elif record.shard is None:
            pid, pid_name = _CONTROL_PID, "control"
        else:
            pid, pid_name = _SHARD_PID_BASE + record.shard, f"shard-{record.shard}"
        tid = tid_for(record.client_id)
        note_track(pid, pid_name, tid, record.client_id or record.kind)
        events.append(
            {
                "name": f"{record.kind}:{record.name}",
                "cat": record.kind,
                "ph": "i",
                "s": "g",
                "ts": _micros(record.sim_time),
                "pid": pid,
                "tid": tid,
                "args": dict(record.details),
            }
        )

    metadata: List[Dict[str, object]] = []
    for pid, pid_name in sorted(pids_seen.items()):
        metadata.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": pid_name},
            }
        )
    for (pid, tid), tid_name in sorted(tids_seen.items()):
        metadata.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": tid_name},
            }
        )
    return metadata + events


def write_chrome_trace(telemetry: Telemetry, path: str, wall_tracks: bool = False) -> int:
    """Write a perfetto-loadable ``trace_event`` JSON file; returns #events."""
    events = chrome_trace_events(telemetry, wall_tracks=wall_tracks)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"traceEvents": events, "displayTimeUnit": "ms"}, handle)
    return len(events)


def metrics_snapshot(telemetry: Telemetry) -> Dict[str, object]:
    """Structured JSON-serialisable snapshot of the whole telemetry run."""
    return {
        "registry": telemetry.registry.snapshot(),
        "stage_latency": stage_latency_rows(telemetry),
        "stage_latency_by_shard": stage_latency_rows(telemetry, group_by="shard"),
        "records": {
            "stages": len(telemetry.stage_records),
            "events": len(telemetry.event_records),
            "dropped_stages": telemetry.dropped_stages,
            "dropped_events": telemetry.dropped_events,
        },
    }


def write_metrics_json(telemetry: Telemetry, path: str) -> None:
    """Write :func:`metrics_snapshot` to ``path`` as indented JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(metrics_snapshot(telemetry), handle, indent=2, sort_keys=True)
        handle.write("\n")
