"""Run an existing workload with full instrumentation switched on.

The ``repro telemetry`` CLI subcommand and the nightly trace-artifact job
both funnel through :func:`run_instrumented_workload`, which maps the three
workload names onto the live chaos harness (the only runner that exercises
every lifecycle stage — replay workloads bypass the transports entirely):

* ``cluster`` — the healthy sharded cluster (``fault="none"``, no learning);
* ``learned`` — the same cluster with the probe-driven learning loop on;
* ``chaos``   — any named fault family at a given intensity, learning on.

``runtime="procs"`` reroutes the ``cluster`` workload through the
real-process backend (:class:`~repro.runtime.procs.ProcBackend`): shard
sequencers run in worker processes, their telemetry records are absorbed
into the same hub, and the resulting perfetto export carries genuinely
concurrent wall-clock stamps next to the shared sim-time track.  The
``learned`` and ``chaos`` workloads stay sim-only (faults and probe
scheduling need the deterministic clock).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.obs.telemetry import Telemetry
from repro.runtime.base import ClusterWorkload, RuntimeOutcome, resolve_backend
from repro.workloads.chaos import ChaosReport, ChaosSettings, run_chaos_scenario
from repro.workloads.cluster import build_cluster_scenario

#: Workload names accepted by :func:`run_instrumented_workload`.
WORKLOAD_NAMES: Tuple[str, ...] = ("cluster", "learned", "chaos")


@dataclass(frozen=True)
class InstrumentedRun:
    """One instrumented workload run: the report plus its telemetry.

    ``report`` is populated on the sim path (the chaos harness); runs on a
    non-sim backend carry their :class:`~repro.runtime.base.RuntimeOutcome`
    in ``runtime_outcome`` instead.
    """

    workload: str
    report: Optional[ChaosReport]
    telemetry: Telemetry
    runtime: str = "sim"
    runtime_outcome: Optional[RuntimeOutcome] = None


def run_instrumented_workload(
    workload: str = "cluster",
    num_shards: int = 4,
    num_clients: int = 24,
    messages_per_client: int = 4,
    seed: int = 7,
    fault: str = "delay",
    intensity: float = 1.0,
    merge_topology: str = "flat",
    merge_fanout: int = 2,
    runtime: str = "sim",
    num_workers: Optional[int] = None,
    max_restarts: Optional[int] = None,
    on_shard_loss: str = "raise",
    inject_crash: Optional[int] = None,
) -> InstrumentedRun:
    """Run the named workload with a fresh :class:`Telemetry` hub injected.

    ``max_restarts``/``on_shard_loss`` tune the procs supervisor
    (:class:`~repro.runtime.procs.RestartPolicy` budget and the degraded
    mode once it is exhausted); ``inject_crash`` kills the worker owning
    that shard mid-stream so the recovery path shows up in the trace.  All
    three are procs-only and ignored on the sim runtime.
    """
    if workload not in WORKLOAD_NAMES:
        raise ValueError(f"unknown workload {workload!r}; expected one of {WORKLOAD_NAMES}")
    telemetry = Telemetry()
    if runtime != "sim":
        if workload != "cluster":
            raise ValueError(
                f"workload {workload!r} requires the sim runtime "
                "(faults and probe scheduling need the deterministic clock)"
            )
        scenario = build_cluster_scenario(
            num_clients, messages_per_client=messages_per_client, seed=seed
        )
        cluster_workload = ClusterWorkload.from_scenario(
            scenario,
            num_shards=num_shards,
            merge_topology=merge_topology,
            merge_fanout=merge_fanout,
        )
        kwargs: dict = {}
        if num_workers is not None:
            kwargs["num_workers"] = num_workers
        if max_restarts is not None:
            from repro.runtime.procs import RestartPolicy

            kwargs["restart_policy"] = RestartPolicy(max_restarts=max_restarts)
        if on_shard_loss != "raise":
            kwargs["on_shard_loss"] = on_shard_loss
        if inject_crash is not None:
            kwargs["inject_crash"] = inject_crash
            kwargs["crash_point"] = "mid"
        with resolve_backend(runtime, telemetry=telemetry, **kwargs) as backend:
            outcome = backend.run(cluster_workload)
        return InstrumentedRun(
            workload=workload,
            report=None,
            telemetry=telemetry,
            runtime=runtime,
            runtime_outcome=outcome,
        )
    settings = ChaosSettings(
        num_clients=num_clients,
        num_shards=num_shards,
        messages_per_client=messages_per_client,
        seed=seed,
        merge_topology=merge_topology,
        merge_fanout=merge_fanout,
    )
    if workload == "cluster":
        fault, intensity, learning = "none", 1.0, False
    elif workload == "learned":
        fault, intensity, learning = "none", 1.0, True
    else:
        learning = True
    report = run_chaos_scenario(
        fault=fault,
        intensity=intensity,
        settings=settings,
        streaming=True,
        learning=learning,
        telemetry=telemetry,
    )
    return InstrumentedRun(workload=workload, report=report, telemetry=telemetry)
