"""Run an existing workload with full instrumentation switched on.

The ``repro telemetry`` CLI subcommand and the nightly trace-artifact job
both funnel through :func:`run_instrumented_workload`, which maps the three
workload names onto the live chaos harness (the only runner that exercises
every lifecycle stage — replay workloads bypass the transports entirely):

* ``cluster`` — the healthy sharded cluster (``fault="none"``, no learning);
* ``learned`` — the same cluster with the probe-driven learning loop on;
* ``chaos``   — any named fault family at a given intensity, learning on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.obs.telemetry import Telemetry
from repro.workloads.chaos import ChaosReport, ChaosSettings, run_chaos_scenario

#: Workload names accepted by :func:`run_instrumented_workload`.
WORKLOAD_NAMES: Tuple[str, ...] = ("cluster", "learned", "chaos")


@dataclass(frozen=True)
class InstrumentedRun:
    """One instrumented workload run: the report plus its telemetry."""

    workload: str
    report: ChaosReport
    telemetry: Telemetry


def run_instrumented_workload(
    workload: str = "cluster",
    num_shards: int = 4,
    num_clients: int = 24,
    messages_per_client: int = 4,
    seed: int = 7,
    fault: str = "delay",
    intensity: float = 1.0,
    merge_topology: str = "flat",
    merge_fanout: int = 2,
) -> InstrumentedRun:
    """Run the named workload with a fresh :class:`Telemetry` hub injected."""
    if workload not in WORKLOAD_NAMES:
        raise ValueError(f"unknown workload {workload!r}; expected one of {WORKLOAD_NAMES}")
    settings = ChaosSettings(
        num_clients=num_clients,
        num_shards=num_shards,
        messages_per_client=messages_per_client,
        seed=seed,
        merge_topology=merge_topology,
        merge_fanout=merge_fanout,
    )
    telemetry = Telemetry()
    if workload == "cluster":
        fault, intensity, learning = "none", 1.0, False
    elif workload == "learned":
        fault, intensity, learning = "none", 1.0, True
    else:
        learning = True
    report = run_chaos_scenario(
        fault=fault,
        intensity=intensity,
        settings=settings,
        streaming=True,
        learning=learning,
        telemetry=telemetry,
    )
    return InstrumentedRun(workload=workload, report=report, telemetry=telemetry)
