"""repro.obs — the unified telemetry layer.

Message-lifecycle tracing, a cluster-wide metrics registry, perfetto-ready
trace export and an instrumented-workload runner.

Contract: every traced message passes through the eight lifecycle stages in
:data:`LIFECYCLE_STAGES` — ``client_send → channel_deliver → shard_intake →
engine_append → emission_check → batch_emit → merge_observe → merge_commit``
— each recorded with both its simulated time and a wall-clock stamp; instant
happenings (fault firings, distribution refreshes, dedupe-gate hits, runtime
worker lifecycle, edge connections) land as :class:`EventRecord`\\ s.

Parity guarantees, pinned by ``tests/obs/``: same seed ⇒ identical
simulated-time trace (``Telemetry.sim_fingerprint()``; wall stamps are the
only permitted rerun difference), and telemetry off is bitwise free —
components default to the :data:`~repro.obs.telemetry.NO_TELEMETRY` no-op
singleton, hot paths gate on one ``enabled`` attribute read, and an
uninstrumented run produces the same merged order, counters and RNG
consumption as an instrumented one.
"""

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SnapshotSource,
    StatsSnapshot,
)
from repro.obs.telemetry import (
    LIFECYCLE_STAGES,
    NO_TELEMETRY,
    EventRecord,
    NullTelemetry,
    StageRecord,
    Telemetry,
    resolve,
)
from repro.obs.spans import Transition, message_timelines, stage_latency_rows, transitions
from repro.obs.export import (
    chrome_trace_events,
    metrics_snapshot,
    write_chrome_trace,
    write_metrics_json,
)

#: Workload-runner symbols resolved lazily (PEP 562): ``obs.workload`` pulls
#: in the live chaos harness, whose network layer itself imports
#: ``repro.obs.telemetry`` — an eager import here would be circular.
_LAZY_WORKLOAD = ("WORKLOAD_NAMES", "InstrumentedRun", "run_instrumented_workload")


def __getattr__(name: str):
    if name in _LAZY_WORKLOAD:
        from repro.obs import workload

        return getattr(workload, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SnapshotSource",
    "StatsSnapshot",
    "LIFECYCLE_STAGES",
    "NO_TELEMETRY",
    "EventRecord",
    "NullTelemetry",
    "StageRecord",
    "Telemetry",
    "resolve",
    "Transition",
    "message_timelines",
    "stage_latency_rows",
    "transitions",
    "chrome_trace_events",
    "metrics_snapshot",
    "write_chrome_trace",
    "write_metrics_json",
    "WORKLOAD_NAMES",
    "InstrumentedRun",
    "run_instrumented_workload",
]
