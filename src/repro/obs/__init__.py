"""repro.obs — the unified telemetry layer.

Message-lifecycle tracing, a cluster-wide metrics registry, perfetto-ready
trace export and an instrumented-workload runner.  Everything is opt-in:
components default to the :data:`~repro.obs.telemetry.NO_TELEMETRY` no-op
singleton, and the disabled path is parity-tested bitwise against
uninstrumented runs.
"""

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SnapshotSource,
    StatsSnapshot,
)
from repro.obs.telemetry import (
    LIFECYCLE_STAGES,
    NO_TELEMETRY,
    EventRecord,
    NullTelemetry,
    StageRecord,
    Telemetry,
    resolve,
)
from repro.obs.spans import Transition, message_timelines, stage_latency_rows, transitions
from repro.obs.export import (
    chrome_trace_events,
    metrics_snapshot,
    write_chrome_trace,
    write_metrics_json,
)

#: Workload-runner symbols resolved lazily (PEP 562): ``obs.workload`` pulls
#: in the live chaos harness, whose network layer itself imports
#: ``repro.obs.telemetry`` — an eager import here would be circular.
_LAZY_WORKLOAD = ("WORKLOAD_NAMES", "InstrumentedRun", "run_instrumented_workload")


def __getattr__(name: str):
    if name in _LAZY_WORKLOAD:
        from repro.obs import workload

        return getattr(workload, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SnapshotSource",
    "StatsSnapshot",
    "LIFECYCLE_STAGES",
    "NO_TELEMETRY",
    "EventRecord",
    "NullTelemetry",
    "StageRecord",
    "Telemetry",
    "resolve",
    "Transition",
    "message_timelines",
    "stage_latency_rows",
    "transitions",
    "chrome_trace_events",
    "metrics_snapshot",
    "write_chrome_trace",
    "write_metrics_json",
    "WORKLOAD_NAMES",
    "InstrumentedRun",
    "run_instrumented_workload",
]
