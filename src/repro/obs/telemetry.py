"""The telemetry hub: message-lifecycle stages, trace events and metrics.

One :class:`Telemetry` object is threaded (as an *injected hook*, never a
hard-coded timer) through the live stack — channels, transports, the sharded
cluster, per-shard sequencers, the streaming merger, the learning loop and
the chaos controller.  Components record

* **lifecycle stages** — one :class:`StageRecord` per message per stage of
  :data:`LIFECYCLE_STAGES` (client send → channel delivery → shard intake →
  engine append → emission check → batch emission → streaming-merge
  observation → merged-order commit), each carrying both the simulated time
  and a wall-clock stamp;
* **trace events** — instantaneous occurrences (fault firings, distribution
  refreshes, dedupe-gate hits) as :class:`EventRecord`;
* **metrics** — named counters/gauges/histograms on the embedded
  :class:`~repro.obs.registry.MetricsRegistry`.

Determinism: for a fixed seed the *simulated-time* projection of the
recorded stream (:meth:`Telemetry.sim_fingerprint`) is identical across
reruns; wall-clock stamps are measurement-only and excluded.

Disabled fast path
------------------
Every instrumented component defaults to the module-level
:data:`NO_TELEMETRY` singleton, whose methods are no-ops and whose
``enabled`` flag is ``False`` — hot paths guard with
``if self._obs.enabled:`` so a run without telemetry performs no record
construction, consumes no RNG draws and stays bitwise identical to an
uninstrumented build (parity-tested in ``tests/obs``).
"""

from __future__ import annotations

import time
from typing import Dict, List, NamedTuple, Optional, Tuple

from repro.obs.registry import MetricsRegistry, SnapshotSource

#: Message-lifecycle stages in pipeline order.
LIFECYCLE_STAGES: Tuple[str, ...] = (
    "client_send",
    "channel_deliver",
    "shard_intake",
    "engine_append",
    "emission_check",
    "batch_emit",
    "merge_observe",
    "merge_commit",
)

#: Stage name -> pipeline position.
STAGE_ORDER: Dict[str, int] = {stage: index for index, stage in enumerate(LIFECYCLE_STAGES)}


class StageRecord(NamedTuple):
    """One message hitting one lifecycle stage.

    Messages are identified by ``(client_id, sequence)`` — the per-client
    monotone sequence number assigned by the live
    :class:`~repro.network.transport.ClientEndpoint` — which is stable
    across reruns (unlike the process-global ``message_id``).
    """

    stage: str
    client_id: str
    sequence: int
    shard: Optional[int]
    sim_time: float
    wall_time: float

    def sim_view(self) -> Tuple[str, str, int, Optional[int], float]:
        """The record without its wall-clock stamp (determinism comparisons)."""
        return (self.stage, self.client_id, self.sequence, self.shard, self.sim_time)


class EventRecord(NamedTuple):
    """One instantaneous trace event (fault firing, refresh, gate hit...)."""

    kind: str
    name: str
    client_id: Optional[str]
    shard: Optional[int]
    sim_time: float
    wall_time: float
    details: Tuple[Tuple[str, object], ...]

    def sim_view(self) -> Tuple[object, ...]:
        """The record without its wall-clock stamp (determinism comparisons)."""
        return (self.kind, self.name, self.client_id, self.shard, self.sim_time, self.details)


class Telemetry:
    """Live telemetry collector: stages + events + metrics registry."""

    enabled: bool = True

    def __init__(
        self,
        stage_capacity: Optional[int] = None,
        event_capacity: Optional[int] = None,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if stage_capacity is not None and stage_capacity < 1:
            raise ValueError("stage_capacity must be positive when given")
        if event_capacity is not None and event_capacity < 1:
            raise ValueError("event_capacity must be positive when given")
        self.registry = registry if registry is not None else MetricsRegistry()
        self._stage_capacity = stage_capacity
        self._event_capacity = event_capacity
        self._stages: List[StageRecord] = []
        self._events: List[EventRecord] = []
        self._dropped_stages = 0
        self._dropped_events = 0

    # ---------------------------------------------------------------- records
    @property
    def stage_records(self) -> List[StageRecord]:
        """All recorded lifecycle stage records, in recording order."""
        return list(self._stages)

    @property
    def event_records(self) -> List[EventRecord]:
        """All recorded instantaneous events, in recording order."""
        return list(self._events)

    @property
    def dropped_stages(self) -> int:
        """Stage records discarded because ``stage_capacity`` was reached."""
        return self._dropped_stages

    @property
    def dropped_events(self) -> int:
        """Event records discarded because ``event_capacity`` was reached."""
        return self._dropped_events

    # ----------------------------------------------------------------- intake
    def stage(
        self,
        stage: str,
        message,
        sim_time: float,
        shard: Optional[int] = None,
        wall: Optional[float] = None,
    ) -> None:
        """Record ``message`` (a TimestampedMessage) reaching ``stage``.

        ``wall`` overrides the wall-clock stamp (e.g. the start of the
        emission check that emitted the batch); by default the current
        ``time.perf_counter()`` is stamped.
        """
        if self._stage_capacity is not None and len(self._stages) >= self._stage_capacity:
            self._dropped_stages += 1
            return
        self._stages.append(
            StageRecord(
                stage=stage,
                client_id=message.client_id,
                sequence=int(message.sequence_number),
                shard=shard,
                sim_time=float(sim_time),
                wall_time=time.perf_counter() if wall is None else float(wall),
            )
        )

    def event(
        self,
        kind: str,
        name: str,
        sim_time: float,
        client_id: Optional[str] = None,
        shard: Optional[int] = None,
        **details: object,
    ) -> None:
        """Record one instantaneous trace event."""
        if self._event_capacity is not None and len(self._events) >= self._event_capacity:
            self._dropped_events += 1
            return
        self._events.append(
            EventRecord(
                kind=kind,
                name=name,
                client_id=client_id,
                shard=shard,
                sim_time=float(sim_time),
                wall_time=time.perf_counter(),
                details=tuple(sorted(details.items())),
            )
        )

    # ---------------------------------------------------------------- metrics
    def count(self, name: str, amount: int = 1) -> None:
        """Increment the named registry counter."""
        self.registry.counter(name).inc(amount)

    def observe(self, name: str, value: float) -> None:
        """Record one observation on the named registry histogram."""
        self.registry.histogram(name).observe(value)

    def gauge(self, name: str, value: float) -> None:
        """Set the named registry gauge."""
        self.registry.gauge(name).set(value)

    def attach(self, name: str, source: SnapshotSource) -> None:
        """Attach a snapshot source to the registry (see its docstring)."""
        self.registry.attach(name, source)

    def absorb(
        self,
        stages: List[StageRecord] = (),
        events: List[EventRecord] = (),
    ) -> None:
        """Fold externally recorded stage/event records into this hub.

        The cross-process merge path: real-runtime workers collect records
        into their own :class:`Telemetry` and ship the (picklable)
        ``StageRecord``/``EventRecord`` lists back with their results; the
        coordinator absorbs them here so exporters and ``sim_fingerprint()``
        see one unified stream.  Capacity limits still apply.
        """
        for record in stages:
            if self._stage_capacity is not None and len(self._stages) >= self._stage_capacity:
                self._dropped_stages += 1
                continue
            self._stages.append(StageRecord(*record))
        for record in events:
            if self._event_capacity is not None and len(self._events) >= self._event_capacity:
                self._dropped_events += 1
                continue
            self._events.append(EventRecord(*record))

    # ------------------------------------------------------------ determinism
    def sim_fingerprint(self) -> Tuple[Tuple[object, ...], ...]:
        """The full recorded stream with wall-clock fields stripped.

        Two runs with the same seed produce equal fingerprints; this is the
        property the determinism tests pin.
        """
        stages = tuple(record.sim_view() for record in self._stages)
        events = tuple(record.sim_view() for record in self._events)
        return stages + events


class NullTelemetry:
    """The disabled-telemetry fast path: every method is a no-op.

    Instrumented components hold a reference to :data:`NO_TELEMETRY` when no
    telemetry was injected; hot paths gate on :attr:`enabled` so the only
    residual cost is one attribute read per call site.
    """

    enabled: bool = False
    registry: Optional[MetricsRegistry] = None

    def stage(self, *args: object, **kwargs: object) -> None:
        """No-op."""

    def event(self, *args: object, **kwargs: object) -> None:
        """No-op."""

    def count(self, *args: object, **kwargs: object) -> None:
        """No-op."""

    def observe(self, *args: object, **kwargs: object) -> None:
        """No-op."""

    def gauge(self, *args: object, **kwargs: object) -> None:
        """No-op."""

    def attach(self, *args: object, **kwargs: object) -> None:
        """No-op."""

    def absorb(self, *args: object, **kwargs: object) -> None:
        """No-op."""

    def sim_fingerprint(self) -> Tuple[Tuple[object, ...], ...]:
        """Always empty."""
        return ()


#: Module-level no-op singleton shared by every uninstrumented component.
NO_TELEMETRY = NullTelemetry()


def resolve(telemetry: Optional[Telemetry]) -> "Telemetry | NullTelemetry":
    """``telemetry`` itself, or the shared no-op singleton when ``None``."""
    return telemetry if telemetry is not None else NO_TELEMETRY
