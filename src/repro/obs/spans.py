"""Message-lifecycle span analysis: per-stage latency breakdowns.

Turns the flat stream of :class:`~repro.obs.telemetry.StageRecord`s into
per-message timelines and aggregated stage-transition latency tables (the
``repro telemetry`` CLI output).  All latencies here are *simulated-time*
deltas — the quantity the paper's pipeline controls — with the wall-clock
stamps carried alongside for profiling.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

from repro.obs.telemetry import LIFECYCLE_STAGES, STAGE_ORDER, StageRecord, Telemetry

#: Identity of one message in the lifecycle tracker.
MessageKey = Tuple[str, int]


class Transition(NamedTuple):
    """One message moving from one lifecycle stage to the next recorded one."""

    name: str
    client_id: str
    sequence: int
    shard: Optional[int]
    sim_delta: float
    wall_delta: float


def message_timelines(records: Sequence[StageRecord]) -> Dict[MessageKey, List[StageRecord]]:
    """Group stage records per message, ordered by pipeline stage.

    A message replayed through a second shard (failover) or committed by
    both the offline and the streaming merge produces duplicate stage
    records; the *first* record per stage wins — it is the one the original
    delivery produced.
    """
    per_message: Dict[MessageKey, Dict[str, StageRecord]] = {}
    for record in records:
        if record.stage not in STAGE_ORDER:
            continue
        stages = per_message.setdefault((record.client_id, record.sequence), {})
        if record.stage not in stages:
            stages[record.stage] = record
    return {
        key: [stages[stage] for stage in LIFECYCLE_STAGES if stage in stages]
        for key, stages in per_message.items()
    }


def transitions(telemetry: Telemetry) -> List[Transition]:
    """Per-message latencies between consecutive *recorded* stages.

    The transition is attributed to the destination stage's shard (falling
    back to the source stage's), so per-shard breakdowns group sequencing
    work under the shard that performed it.
    """
    result: List[Transition] = []
    for (client_id, sequence), timeline in sorted(
        message_timelines(telemetry.stage_records).items()
    ):
        for earlier, later in zip(timeline, timeline[1:]):
            shard = later.shard if later.shard is not None else earlier.shard
            result.append(
                Transition(
                    name=f"{earlier.stage}->{later.stage}",
                    client_id=client_id,
                    sequence=sequence,
                    shard=shard,
                    sim_delta=later.sim_time - earlier.sim_time,
                    wall_delta=later.wall_time - earlier.wall_time,
                )
            )
        if len(timeline) >= 2:
            first, last = timeline[0], timeline[-1]
            result.append(
                Transition(
                    name=f"total ({first.stage}->{last.stage})",
                    client_id=client_id,
                    sequence=sequence,
                    shard=last.shard if last.shard is not None else first.shard,
                    sim_delta=last.sim_time - first.sim_time,
                    wall_delta=last.wall_time - first.wall_time,
                )
            )
    return result


def _percentile(ordered: List[float], fraction: float) -> float:
    if not ordered:
        return 0.0
    rank = min(int(fraction * len(ordered)), len(ordered) - 1)
    return ordered[rank]


def _transition_sort_key(name: str) -> Tuple[int, int, str]:
    if name.startswith("total"):
        return (1, len(LIFECYCLE_STAGES), name)
    source = name.split("->", 1)[0]
    return (0, STAGE_ORDER.get(source, len(LIFECYCLE_STAGES)), name)


def stage_latency_rows(
    telemetry: Telemetry, group_by: Optional[str] = None
) -> List[Dict[str, object]]:
    """Aggregate transition latencies into printable table rows.

    One row per stage transition (plus an end-to-end ``total`` row), with
    count / mean / p50 / p95 / max of the simulated-time latency in
    milliseconds.  ``group_by`` may be ``"shard"`` or ``"client"`` to add a
    grouping column (one row per transition per group).
    """
    if group_by not in (None, "shard", "client"):
        raise ValueError(f"group_by must be None, 'shard' or 'client', got {group_by!r}")
    groups: Dict[Tuple[object, str], List[Transition]] = {}
    for transition in transitions(telemetry):
        if group_by == "shard":
            group: object = transition.shard
        elif group_by == "client":
            group = transition.client_id
        else:
            group = ""
        groups.setdefault((group, transition.name), []).append(transition)

    rows: List[Dict[str, object]] = []
    ordered_keys = sorted(groups, key=lambda key: (str(key[0]), _transition_sort_key(key[1])))
    for group, name in ordered_keys:
        sims = sorted(t.sim_delta * 1e3 for t in groups[(group, name)])
        walls = [t.wall_delta * 1e3 for t in groups[(group, name)]]
        row: Dict[str, object] = {}
        if group_by is not None:
            row[group_by] = group
        row.update(
            {
                "stage": name,
                "count": len(sims),
                "sim_mean_ms": round(sum(sims) / len(sims), 4),
                "sim_p50_ms": round(_percentile(sims, 0.50), 4),
                "sim_p95_ms": round(_percentile(sims, 0.95), 4),
                "sim_max_ms": round(max(sims), 4),
                "wall_mean_ms": round(sum(walls) / len(walls), 4),
            }
        )
        rows.append(row)
    return rows
