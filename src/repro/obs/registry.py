"""Cluster-wide metrics registry: named counters, gauges and histograms.

The registry is the aggregation point of the telemetry layer
(:mod:`repro.obs`).  Instrumented components create named instruments
lazily (``registry.counter("cluster.duplicates_suppressed")``) and the
registry renders everything into one nested :meth:`MetricsRegistry.snapshot`
dictionary.

Existing per-component stats objects are folded in through the common
snapshot protocol: anything exposing ``as_dict() -> dict`` —
:class:`~repro.core.engine.EngineStats`,
:class:`~repro.chaos.controller.ChaosStats`,
:class:`~repro.sync.refresh.RefreshStats`, the
:class:`~repro.simulation.event_loop.EventLoop` — can be attached as a
*source* (:meth:`MetricsRegistry.attach`) and is re-read at snapshot time,
so one ``snapshot()`` call replaces the bespoke per-experiment merging of
those dataclasses.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Protocol, Union, runtime_checkable


@runtime_checkable
class StatsSnapshot(Protocol):
    """The common snapshot protocol: a flat-dictionary view of counters."""

    def as_dict(self) -> Dict[str, object]: ...


#: A snapshot source: a stats object, or a zero-arg callable returning either
#: a plain dictionary or a stats object (re-evaluated at snapshot time).
SnapshotSource = Union[StatsSnapshot, Callable[[], object]]


class Counter:
    """A monotonically increasing named counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1) to the counter."""
        self.value += amount


class Gauge:
    """A named instantaneous value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        """Record the current value."""
        self.value = float(value)


class Histogram:
    """A named distribution of observations with a bounded sample buffer.

    Exact ``count`` / ``total`` / ``min`` / ``max`` are maintained for every
    observation; the raw samples backing the percentile summary are capped at
    ``capacity`` (further observations update the exact aggregates and bump
    ``dropped_samples``), so a histogram on a hot path cannot grow without
    bound.
    """

    __slots__ = (
        "name",
        "capacity",
        "count",
        "total",
        "minimum",
        "maximum",
        "dropped_samples",
        "_samples",
    )

    def __init__(self, name: str, capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError(f"histogram capacity must be positive, got {capacity!r}")
        self.name = name
        self.capacity = int(capacity)
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")
        self.dropped_samples = 0
        self._samples: List[float] = []

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        if len(self._samples) < self.capacity:
            self._samples.append(value)
        else:
            self.dropped_samples += 1

    def percentile(self, fraction: float) -> float:
        """Nearest-rank percentile over the retained samples (0 when empty)."""
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = min(int(fraction * len(ordered)), len(ordered) - 1)
        return ordered[rank]

    def summary(self) -> Dict[str, object]:
        """Flat summary: exact aggregates plus sample-based percentiles."""
        if self.count == 0:
            return {
                "count": 0,
                "total": 0.0,
                "mean": 0.0,
                "min": 0.0,
                "max": 0.0,
                "p50": 0.0,
                "p95": 0.0,
                "dropped_samples": 0,
            }
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.total / self.count,
            "min": self.minimum,
            "max": self.maximum,
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "dropped_samples": self.dropped_samples,
        }


class MetricsRegistry:
    """Named counters/gauges/histograms plus attached snapshot sources."""

    def __init__(self, histogram_capacity: int = 4096) -> None:
        self._histogram_capacity = int(histogram_capacity)
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._sources: Dict[str, SnapshotSource] = {}

    # ------------------------------------------------------------ instruments
    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str, capacity: Optional[int] = None) -> Histogram:
        """Get or create the histogram ``name``."""
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(
                name, capacity if capacity is not None else self._histogram_capacity
            )
        return instrument

    # --------------------------------------------------------------- sources
    def attach(self, name: str, source: SnapshotSource) -> None:
        """Attach a named snapshot source, re-read on every :meth:`snapshot`.

        ``source`` is anything with ``as_dict()`` (the common stats protocol)
        or a zero-arg callable returning a dictionary / stats object —
        e.g. ``attach("loop", event_loop)`` or
        ``attach("engine", cluster.engine_stats)``.
        """
        self._sources[name] = source

    def detach(self, name: str) -> None:
        """Remove a previously attached source (missing names are ignored)."""
        self._sources.pop(name, None)

    @property
    def source_names(self) -> List[str]:
        """Names of the attached snapshot sources."""
        return list(self._sources)

    @staticmethod
    def _resolve_source(source: SnapshotSource) -> Dict[str, object]:
        view: object = source
        if callable(view) and not hasattr(view, "as_dict"):
            view = view()
        if hasattr(view, "as_dict"):
            view = view.as_dict()
        if not isinstance(view, dict):
            raise TypeError(
                f"snapshot source produced {type(view).__name__}, expected a dict "
                "(or an object with as_dict())"
            )
        return dict(view)

    # -------------------------------------------------------------- snapshot
    def snapshot(self) -> Dict[str, object]:
        """One nested, JSON-serialisable view of every instrument and source."""
        return {
            "counters": {name: c.value for name, c in sorted(self._counters.items())},
            "gauges": {name: g.value for name, g in sorted(self._gauges.items())},
            "histograms": {name: h.summary() for name, h in sorted(self._histograms.items())},
            "sources": {
                name: self._resolve_source(source)
                for name, source in sorted(self._sources.items())
            },
        }
