"""Client-to-sequencer transport: endpoints, heartbeats and fan-in.

A :class:`Transport` wires a set of :class:`ClientEndpoint` objects to a
single :class:`SequencerEndpoint` through per-client channels.  Clients send
timestamped messages and periodic heartbeats; the sequencer endpoint fans all
arrivals into a receiver callback (normally an online sequencer).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Union

import numpy as np

from repro.clocks.local import LocalClock
from repro.network.channel import Channel, OrderedChannel, UnorderedChannel
from repro.network.link import ConstantDelay, DelayModel
from repro.network.message import Heartbeat, TimestampedMessage
from repro.obs.telemetry import Telemetry, resolve
from repro.simulation.entity import Entity
from repro.simulation.trace import TraceRecorder

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.base import Scheduler

ArrivalCallback = Callable[[Union[TimestampedMessage, Heartbeat], float], None]
BurstCallback = Callable[[List[Union[TimestampedMessage, Heartbeat]], float], None]


class SequencerEndpoint(Entity):
    """The sequencer-side endpoint that receives every client's traffic.

    With ``coalesce_bursts`` enabled, items delivered at the same simulated
    instant are buffered and handed downstream as *one* burst: the flush
    event is scheduled at the current time with a lower priority than the
    channel deliveries, so it runs only after every same-instant delivery
    has landed.  A registered :meth:`on_burst` callback receives the whole
    list (one engine block append, one emission check); otherwise the burst
    is replayed through the per-item callback.
    """

    def __init__(
        self, loop: Scheduler, name: str = "sequencer", coalesce_bursts: bool = False
    ) -> None:
        super().__init__(loop, name)
        self._on_arrival: Optional[ArrivalCallback] = None
        self._on_burst: Optional[BurstCallback] = None
        self._arrivals: List[Any] = []
        self._coalesce = bool(coalesce_bursts)
        self._burst_buffer: List[Union[TimestampedMessage, Heartbeat]] = []
        self._flush_scheduled = False
        self._bursts_delivered = 0
        self._largest_burst = 0

    @property
    def arrivals(self) -> List[Any]:
        """All items received so far, in arrival order."""
        return list(self._arrivals)

    @property
    def coalesce_bursts(self) -> bool:
        """Whether same-instant deliveries are coalesced into bursts."""
        return self._coalesce

    @property
    def bursts_delivered(self) -> int:
        """Number of coalesced bursts handed downstream so far."""
        return self._bursts_delivered

    @property
    def largest_burst(self) -> int:
        """Size of the largest coalesced burst delivered so far."""
        return self._largest_burst

    def messages(self) -> List[TimestampedMessage]:
        """Only the timestamped messages received so far, in arrival order."""
        return [item for item in self._arrivals if isinstance(item, TimestampedMessage)]

    def on_arrival(self, callback: ArrivalCallback) -> None:
        """Register a callback invoked as ``callback(item, arrival_time)``."""
        self._on_arrival = callback

    def on_burst(self, callback: BurstCallback) -> None:
        """Register a callback invoked as ``callback(items, arrival_time)``.

        Only consulted when ``coalesce_bursts`` is enabled; wire it to
        :meth:`repro.core.online.OnlineTommySequencer.receive_many` (or the
        cluster equivalent) so a k-message simultaneity burst costs one
        emission check instead of k.
        """
        self._on_burst = callback

    def receive(self, item: Union[TimestampedMessage, Heartbeat]) -> None:
        """Entry point wired into the per-client channels."""
        self._arrivals.append(item)
        if not self._coalesce:
            if self._on_arrival is not None:
                self._on_arrival(item, self.now)
            return
        self._burst_buffer.append(item)
        if not self._flush_scheduled:
            self._flush_scheduled = True
            # priority 1: after every same-instant (priority 0) delivery
            self._loop.schedule_at(self.now, self._flush_burst, priority=1, label=self.name)

    def _flush_burst(self) -> None:
        burst = self._burst_buffer
        self._burst_buffer = []
        self._flush_scheduled = False
        if not burst:
            return
        self._bursts_delivered += 1
        self._largest_burst = max(self._largest_burst, len(burst))
        if self._on_burst is not None:
            self._on_burst(burst, self.now)
        elif self._on_arrival is not None:
            for item in burst:
                self._on_arrival(item, self.now)


class ClientEndpoint(Entity):
    """A client: owns a local clock and a channel to the sequencer."""

    def __init__(
        self,
        loop: Scheduler,
        client_id: str,
        clock: LocalClock,
        channel: Channel,
        heartbeat_interval: Optional[float] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        super().__init__(loop, client_id)
        if heartbeat_interval is not None and heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive when given")
        self._client_id = client_id
        self._clock = clock
        self._channel = channel
        self._heartbeat_interval = heartbeat_interval
        self._obs = resolve(telemetry)
        self._sequence_number = 0
        self._sent_messages: List[TimestampedMessage] = []
        self._heartbeats_sent = 0
        self._heartbeat_running = False

    @property
    def client_id(self) -> str:
        """Stable client identifier."""
        return self._client_id

    @property
    def clock(self) -> LocalClock:
        """This client's local clock."""
        return self._clock

    @property
    def sent_messages(self) -> List[TimestampedMessage]:
        """Messages sent so far (with ground-truth fields populated)."""
        return list(self._sent_messages)

    @property
    def heartbeats_sent(self) -> int:
        """Number of heartbeats sent so far."""
        return self._heartbeats_sent

    def send(self, payload: Any = None) -> TimestampedMessage:
        """Timestamp ``payload`` with the local clock and transmit it."""
        reading = self._clock.read()
        self._sequence_number += 1
        message = TimestampedMessage(
            client_id=self._client_id,
            timestamp=reading.reported,
            true_time=reading.true_time,
            payload=payload,
            sequence_number=self._sequence_number,
        )
        self._sent_messages.append(message)
        if self._obs.enabled:
            self._obs.stage("client_send", message, self.now)
        self._channel.send(message)
        return message

    def send_heartbeat(self) -> Heartbeat:
        """Send a single heartbeat carrying the current local-clock reading."""
        reading = self._clock.read()
        self._sequence_number += 1
        heartbeat = Heartbeat(
            client_id=self._client_id,
            timestamp=reading.reported,
            true_time=reading.true_time,
            sequence_number=self._sequence_number,
        )
        self._heartbeats_sent += 1
        self._channel.send(heartbeat)
        return heartbeat

    def start_heartbeats(self) -> None:
        """Begin sending heartbeats every ``heartbeat_interval`` seconds."""
        if self._heartbeat_interval is None:
            raise ValueError(f"client {self._client_id} has no heartbeat interval configured")
        if self._heartbeat_running:
            return
        self._heartbeat_running = True
        self.call_after(self._heartbeat_interval, self._heartbeat_tick)

    def stop_heartbeats(self) -> None:
        """Stop sending periodic heartbeats (models a failed client)."""
        self._heartbeat_running = False

    def _heartbeat_tick(self) -> None:
        if not self._heartbeat_running:
            return
        self.send_heartbeat()
        self.call_after(self._heartbeat_interval, self._heartbeat_tick)


class Transport:
    """Factory wiring N clients to one sequencer endpoint."""

    def __init__(
        self,
        loop: Scheduler,
        rng_factory: Callable[[str], np.random.Generator],
        trace: Optional[TraceRecorder] = None,
        coalesce_bursts: bool = False,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self._loop = loop
        self._rng_factory = rng_factory
        self._trace = trace
        self._telemetry = telemetry
        self._sequencer = SequencerEndpoint(loop, coalesce_bursts=coalesce_bursts)
        self._clients: Dict[str, ClientEndpoint] = {}
        self._channels: Dict[str, Channel] = {}

    @property
    def sequencer(self) -> SequencerEndpoint:
        """The shared sequencer-side endpoint."""
        return self._sequencer

    @property
    def clients(self) -> Dict[str, ClientEndpoint]:
        """Mapping from client id to its endpoint."""
        return dict(self._clients)

    def channel_for(self, client_id: str) -> Channel:
        """The channel carrying ``client_id``'s traffic to the sequencer."""
        return self._channels[client_id]

    def install_chaos(self, controller: Any) -> int:
        """Install ``controller``'s per-client fault hooks on every channel.

        ``controller`` is a :class:`~repro.chaos.controller.ChaosController`
        (anything exposing ``channel_hook(client_id)``).  Clients added
        *after* this call are not hooked — wire clients first, then arm
        chaos.  Returns the number of channels hooked.
        """
        for client_id, channel in self._channels.items():
            channel.set_fault_hook(controller.channel_hook(client_id))
        return len(self._channels)

    def add_client(
        self,
        client_id: str,
        clock: LocalClock,
        delay_model: Optional[DelayModel] = None,
        ordered: bool = True,
        heartbeat_interval: Optional[float] = None,
        drop_probability: float = 0.0,
    ) -> ClientEndpoint:
        """Create a client endpoint plus its channel to the sequencer."""
        if client_id in self._clients:
            raise ValueError(f"duplicate client id {client_id!r}")
        delay_model = delay_model if delay_model is not None else ConstantDelay(0.0)
        channel_cls = OrderedChannel if ordered else UnorderedChannel
        channel = channel_cls(
            self._loop,
            f"chan:{client_id}",
            delay_model,
            self._rng_factory(f"channel:{client_id}"),
            self._sequencer.receive,
            trace=self._trace,
            drop_probability=drop_probability,
            telemetry=self._telemetry,
        )
        client = ClientEndpoint(
            self._loop,
            client_id,
            clock,
            channel,
            heartbeat_interval=heartbeat_interval,
            telemetry=self._telemetry,
        )
        self._clients[client_id] = client
        self._channels[client_id] = channel
        return client
