"""Network substrate: messages, delay models, channels and transports.

The sequencer only cares about *when* messages arrive and whether per-client
delivery is ordered, so the network substrate models exactly that: links with
configurable delay/jitter distributions (:mod:`repro.network.link`), ordered
(TCP-like) and unordered (UDP-like) channels (:mod:`repro.network.channel`),
and a client-to-sequencer transport with heartbeats
(:mod:`repro.network.transport`).
"""

from repro.network.message import Heartbeat, SequencedBatch, TimestampedMessage
from repro.network.link import (
    ConstantDelay,
    DelayModel,
    GammaDelay,
    LogNormalDelay,
    UniformJitterDelay,
)
from repro.network.channel import Channel, OrderedChannel, UnorderedChannel
from repro.network.transport import ClientEndpoint, SequencerEndpoint, Transport

__all__ = [
    "TimestampedMessage",
    "Heartbeat",
    "SequencedBatch",
    "DelayModel",
    "ConstantDelay",
    "UniformJitterDelay",
    "LogNormalDelay",
    "GammaDelay",
    "Channel",
    "OrderedChannel",
    "UnorderedChannel",
    "ClientEndpoint",
    "SequencerEndpoint",
    "Transport",
]
