"""Point-to-point channels with configurable delivery semantics.

``OrderedChannel`` models a TCP-like connection: per-sender FIFO delivery is
preserved even when sampled delays would reorder messages (a later message is
held until earlier ones have been delivered).  ``UnorderedChannel`` delivers
each message independently after its sampled delay, so reordering is
possible.  The online sequencer's completeness rule (paper §3.5, Q2) is only
sound on ordered channels, which tests exercise explicitly.
"""

from __future__ import annotations

import abc
from typing import Any, Callable, Optional

import numpy as np

from repro.network.link import DelayModel
from repro.simulation.entity import Entity
from repro.simulation.event_loop import EventLoop
from repro.simulation.trace import TraceRecorder

DeliveryCallback = Callable[[Any], None]


class Channel(Entity, abc.ABC):
    """A unidirectional channel from one sender to one receiver callback."""

    def __init__(
        self,
        loop: EventLoop,
        name: str,
        delay_model: DelayModel,
        rng: np.random.Generator,
        deliver: DeliveryCallback,
        trace: Optional[TraceRecorder] = None,
        drop_probability: float = 0.0,
    ) -> None:
        super().__init__(loop, name)
        if not 0.0 <= drop_probability < 1.0:
            raise ValueError(f"drop_probability must be in [0, 1), got {drop_probability!r}")
        self._delay_model = delay_model
        self._rng = rng
        self._deliver = deliver
        self._trace = trace
        self._drop_probability = float(drop_probability)
        self._sent = 0
        self._delivered = 0
        self._dropped = 0

    @property
    def sent(self) -> int:
        """Messages accepted for transmission."""
        return self._sent

    @property
    def delivered(self) -> int:
        """Messages delivered to the receiver callback."""
        return self._delivered

    @property
    def dropped(self) -> int:
        """Messages dropped by the loss process."""
        return self._dropped

    def send(self, item: Any) -> None:
        """Transmit ``item``; it is delivered (or dropped) asynchronously."""
        self._sent += 1
        if self._drop_probability > 0 and self._rng.random() < self._drop_probability:
            self._dropped += 1
            if self._trace is not None:
                self._trace.record(self.now, self.name, "drop", item=item)
            return
        delay = max(float(self._delay_model.sample(self._rng)), 0.0)
        self._enqueue(item, delay)

    @abc.abstractmethod
    def _enqueue(self, item: Any, delay: float) -> None:
        """Schedule delivery of ``item`` after ``delay`` seconds."""

    def _do_deliver(self, item: Any) -> None:
        self._delivered += 1
        if self._trace is not None:
            self._trace.record(self.now, self.name, "deliver", item=item)
        self._deliver(item)


class UnorderedChannel(Channel):
    """UDP-like channel: each message is delivered after its own delay."""

    def _enqueue(self, item: Any, delay: float) -> None:
        self.call_after(delay, self._do_deliver, item)


class OrderedChannel(Channel):
    """TCP-like channel: per-sender FIFO order is preserved.

    Delivery time of message ``k`` is ``max(send_k + delay_k, delivery_{k-1})``
    which models head-of-line blocking of an in-order byte stream.
    """

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self._last_delivery_time = -float("inf")

    def _enqueue(self, item: Any, delay: float) -> None:
        target = max(self.now + delay, self._last_delivery_time)
        # strictly increase delivery time so FIFO order is unambiguous
        if target <= self._last_delivery_time:
            target = np.nextafter(self._last_delivery_time, float("inf"))
        self._last_delivery_time = target
        self.call_at(target, self._do_deliver, item)
