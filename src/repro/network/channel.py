"""Point-to-point channels with configurable delivery semantics.

``OrderedChannel`` models a TCP-like connection: per-sender FIFO delivery is
preserved even when sampled delays would reorder messages (a later message is
held until earlier ones have been delivered).  ``UnorderedChannel`` delivers
each message independently after its sampled delay, so reordering is
possible.  The online sequencer's completeness rule (paper §3.5, Q2) is only
sound on ordered channels, which tests exercise explicitly.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Any, Callable, Optional

import numpy as np

from repro.network.link import DelayModel
from repro.network.message import TimestampedMessage
from repro.obs.telemetry import Telemetry, resolve
from repro.simulation.entity import Entity
from repro.simulation.trace import TraceRecorder

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.runtime.base import Scheduler

DeliveryCallback = Callable[[Any], None]

#: Chaos hook signature: ``hook(item, now)`` returns a decision object with
#: ``drop`` / ``copies`` / ``extra_delay`` / ``not_before`` attributes (see
#: :class:`repro.chaos.controller.FaultDecision`) or ``None`` for no fault.
FaultHook = Callable[[Any, float], Optional[Any]]


class Channel(Entity, abc.ABC):
    """A unidirectional channel from one sender to one receiver callback."""

    def __init__(
        self,
        loop: Scheduler,
        name: str,
        delay_model: DelayModel,
        rng: np.random.Generator,
        deliver: DeliveryCallback,
        trace: Optional[TraceRecorder] = None,
        drop_probability: float = 0.0,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        super().__init__(loop, name)
        if not 0.0 <= drop_probability < 1.0:
            raise ValueError(f"drop_probability must be in [0, 1), got {drop_probability!r}")
        self._delay_model = delay_model
        self._rng = rng
        self._deliver = deliver
        self._trace = trace
        self._obs = resolve(telemetry)
        self._drop_probability = float(drop_probability)
        self._fault_hook: Optional[FaultHook] = None
        self._sent = 0
        self._delivered = 0
        self._dropped = 0
        self._fault_dropped = 0
        self._fault_copies = 0

    @property
    def sent(self) -> int:
        """Messages accepted for transmission."""
        return self._sent

    @property
    def delivered(self) -> int:
        """Messages delivered to the receiver callback."""
        return self._delivered

    @property
    def dropped(self) -> int:
        """Messages dropped by the loss process or an injected fault."""
        return self._dropped

    @property
    def fault_dropped(self) -> int:
        """Messages dropped by the fault hook specifically."""
        return self._fault_dropped

    @property
    def fault_copies(self) -> int:
        """Extra deliveries injected by fault-hook duplication."""
        return self._fault_copies

    def set_fault_hook(self, hook: Optional[FaultHook]) -> None:
        """Install (or clear) the chaos fault hook consulted on every send.

        Without a hook the send path consumes exactly the same RNG draws as
        before the hook existed, so fault-free runs stay bit-identical.
        """
        self._fault_hook = hook

    def send(self, item: Any) -> None:
        """Transmit ``item``; it is delivered (or dropped) asynchronously."""
        self._sent += 1
        decision = self._fault_hook(item, self.now) if self._fault_hook is not None else None
        if decision is not None and decision.drop:
            self._dropped += 1
            self._fault_dropped += 1
            if self._trace is not None:
                self._trace.record(self.now, self.name, "fault-drop", item=item)
            if self._obs.enabled:
                self._obs.count("channel.fault_dropped")
            return
        if self._drop_probability > 0 and self._rng.random() < self._drop_probability:
            self._dropped += 1
            if self._trace is not None:
                self._trace.record(self.now, self.name, "drop", item=item)
            if self._obs.enabled:
                self._obs.count("channel.dropped")
            return
        copies = 1 if decision is None else max(int(decision.copies), 1)
        self._fault_copies += copies - 1
        if copies > 1 and self._obs.enabled:
            self._obs.count("channel.fault_copies", copies - 1)
        for _ in range(copies):
            delay = max(float(self._delay_model.sample(self._rng)), 0.0)
            if decision is not None:
                delay += max(float(decision.extra_delay), 0.0)
                if decision.not_before is not None:
                    delay = max(delay, float(decision.not_before) - self.now)
            self._enqueue(item, delay)

    @abc.abstractmethod
    def _enqueue(self, item: Any, delay: float) -> None:
        """Schedule delivery of ``item`` after ``delay`` seconds."""

    def _do_deliver(self, item: Any) -> None:
        self._delivered += 1
        if self._trace is not None:
            self._trace.record(self.now, self.name, "deliver", item=item)
        if self._obs.enabled and isinstance(item, TimestampedMessage):
            self._obs.stage("channel_deliver", item, self.now)
        self._deliver(item)


class UnorderedChannel(Channel):
    """UDP-like channel: each message is delivered after its own delay."""

    def _enqueue(self, item: Any, delay: float) -> None:
        self.call_after(delay, self._do_deliver, item)


class OrderedChannel(Channel):
    """TCP-like channel: per-sender FIFO order is preserved.

    Delivery time of message ``k`` is ``max(send_k + delay_k, delivery_{k-1})``
    which models head-of-line blocking of an in-order byte stream.
    """

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self._last_delivery_time = -float("inf")

    def _enqueue(self, item: Any, delay: float) -> None:
        target = max(self.now + delay, self._last_delivery_time)
        # strictly increase delivery time so FIFO order is unambiguous
        if target <= self._last_delivery_time:
            target = np.nextafter(self._last_delivery_time, float("inf"))
        self._last_delivery_time = target
        self.call_at(target, self._do_deliver, item)
