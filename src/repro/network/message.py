"""Message types exchanged between clients and the sequencer."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional, Tuple

_MESSAGE_COUNTER = itertools.count()


def _next_message_id() -> int:
    return next(_MESSAGE_COUNTER)


@dataclass(frozen=True)
class TimestampedMessage:
    """A client message carrying a local-clock timestamp (paper §3.1).

    Attributes
    ----------
    client_id:
        Identifier of the originating client.
    timestamp:
        The local-clock timestamp ``T_i`` attached by the client.  This is the
        only timestamp visible to the sequencer.
    true_time:
        The omniscient observer's generation time ``t``.  Used exclusively by
        the evaluation harness; sequencers must never read it.
    payload:
        Application payload (order, bid, command, ...).
    message_id:
        Globally unique id, assigned at construction.
    sequence_number:
        Per-client monotone counter (used by ordered channels / heartbeats).
    """

    client_id: str
    timestamp: float
    true_time: Optional[float] = None
    payload: Any = None
    message_id: int = field(default_factory=_next_message_id)
    sequence_number: int = 0

    def __post_init__(self) -> None:
        if not self.client_id:
            raise ValueError("client_id must be a non-empty string")

    @property
    def key(self) -> Tuple[str, int]:
        """Stable identity used by sequencers and metrics."""
        return (self.client_id, self.message_id)

    def with_timestamp(self, timestamp: float) -> "TimestampedMessage":
        """Copy of this message with a different local timestamp (used by
        Byzantine-client experiments that tamper with timestamps)."""
        return TimestampedMessage(
            client_id=self.client_id,
            timestamp=float(timestamp),
            true_time=self.true_time,
            payload=self.payload,
            message_id=self.message_id,
            sequence_number=self.sequence_number,
        )


@dataclass(frozen=True)
class Heartbeat:
    """A per-client liveness/progress beacon carrying the client's clock.

    Heartbeats answer the online sequencer's completeness question (paper
    §3.5 Q2 / Appendix C): once the sequencer has seen a message or heartbeat
    with timestamp greater than ``t`` from every client on an ordered
    channel, all messages with timestamps <= ``t`` have arrived.
    """

    client_id: str
    timestamp: float
    true_time: Optional[float] = None
    sequence_number: int = 0


@dataclass(frozen=True)
class SequencedBatch:
    """One emitted batch: a rank plus the messages sharing that rank."""

    rank: int
    messages: Tuple[TimestampedMessage, ...]
    emitted_at: Optional[float] = None

    def __post_init__(self) -> None:
        if self.rank < 0:
            raise ValueError(f"rank must be non-negative, got {self.rank!r}")
        if not self.messages:
            raise ValueError("a batch must contain at least one message")

    @property
    def size(self) -> int:
        """Number of messages in the batch."""
        return len(self.messages)

    @property
    def clients(self) -> Tuple[str, ...]:
        """Distinct client ids present in the batch (sorted)."""
        return tuple(sorted({message.client_id for message in self.messages}))
