"""One-way network delay models.

On-prem exchanges engineer equal-length wires so FIFO arrival order equals
generation order (paper Figure 4); cloud networks do not, which is why the
sequencer has to reason about timestamps.  These delay models let experiments
span both regimes.
"""

from __future__ import annotations

import abc

import numpy as np


class DelayModel(abc.ABC):
    """Distribution of the one-way delay experienced by each message."""

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator) -> float:
        """Draw one delay value (seconds, non-negative)."""

    @property
    @abc.abstractmethod
    def mean(self) -> float:
        """Expected delay."""


class ConstantDelay(DelayModel):
    """Fixed propagation delay with zero jitter (equal-length-wire model)."""

    def __init__(self, delay: float) -> None:
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay!r}")
        self._delay = float(delay)

    @property
    def mean(self) -> float:
        return self._delay

    def sample(self, rng: np.random.Generator) -> float:
        return self._delay


class UniformJitterDelay(DelayModel):
    """Base propagation delay plus uniformly distributed jitter."""

    def __init__(self, base: float, jitter: float) -> None:
        if base < 0 or jitter < 0:
            raise ValueError("base and jitter must be non-negative")
        self._base = float(base)
        self._jitter = float(jitter)

    @property
    def mean(self) -> float:
        return self._base + self._jitter / 2.0

    def sample(self, rng: np.random.Generator) -> float:
        if self._jitter > 0:
            return self._base + float(rng.uniform(0.0, self._jitter))
        return self._base


class LogNormalDelay(DelayModel):
    """Heavy-tailed delay typical of shared cloud networks.

    Parameterised by the median delay and a shape parameter sigma; a minimum
    propagation floor is always added.
    """

    def __init__(self, median: float, sigma: float, floor: float = 0.0) -> None:
        if median <= 0:
            raise ValueError(f"median must be positive, got {median!r}")
        if sigma < 0:
            raise ValueError(f"sigma must be non-negative, got {sigma!r}")
        if floor < 0:
            raise ValueError(f"floor must be non-negative, got {floor!r}")
        self._mu = float(np.log(median))
        self._sigma = float(sigma)
        self._floor = float(floor)

    @property
    def mean(self) -> float:
        return self._floor + float(np.exp(self._mu + self._sigma ** 2 / 2.0))

    def sample(self, rng: np.random.Generator) -> float:
        return self._floor + float(rng.lognormal(self._mu, self._sigma))


class GammaDelay(DelayModel):
    """Gamma-distributed queueing delay on top of a propagation floor."""

    def __init__(self, shape: float, scale: float, floor: float = 0.0) -> None:
        if shape <= 0 or scale <= 0:
            raise ValueError("shape and scale must be positive")
        if floor < 0:
            raise ValueError(f"floor must be non-negative, got {floor!r}")
        self._shape = float(shape)
        self._scale = float(scale)
        self._floor = float(floor)

    @property
    def mean(self) -> float:
        return self._floor + self._shape * self._scale

    def sample(self, rng: np.random.Generator) -> float:
        return self._floor + float(rng.gamma(self._shape, self._scale))
