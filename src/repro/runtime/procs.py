"""ProcBackend: real worker processes per shard, coordinator-side merge.

The second execution backend: every shard's
:class:`~repro.core.online.OnlineTommySequencer` runs in its own worker
process (``multiprocessing`` + a result queue), replaying its slice of the
workload on a private event loop, while the coordinator process feeds each
emitted batch into the existing
:class:`~repro.cluster.merge.StreamingMerger` as it streams back.
Throughput now scales with cores; the merged order is still *bitwise equal*
to :class:`~repro.runtime.sim.SimBackend` on the same workload because

* the workload's message timestamps are generated **once** and frozen in
  the :class:`~repro.runtime.base.ClusterWorkload` — both backends replay
  identical inputs at identical virtual times through the shared
  :func:`~repro.cluster.harness.replay_messages` primitive;
* every worker receives the *global* closing-heartbeat instant/beacon, so
  each shard closes its completeness horizon exactly where the sim cluster
  does;
* per-shard sequencer RNG streams depend only on ``config.seed``, and the
  shard→client assignment comes from the same sorted
  :class:`~repro.cluster.router.ShardRouter` construction;
* the streaming merger's result is invariant to the order batches from
  *different* shards are observed in (parity-tested since PR 4), so the
  nondeterministic queue arrival interleaving cannot change the output.

Failure model (the supervision layer): a :class:`WorkerSupervisor` tracks
per-worker liveness and per-shard progress.  Any worker that dies while its
shards are unfinished — hard kill, exception, *or* a clean exit that left
work behind — is respawned with the unfinished shards' frozen
:class:`ShardTask`\\ s under a bounded-restart exponential-backoff
:class:`RestartPolicy`.  Recovery preserves the parity oracle: the frozen
task is deterministic, so the replacement re-emits the exact same batch
stream, and the coordinator's per-shard ``(shard, batch_index)`` gate (the
:meth:`~repro.cluster.merge.StreamingMerger.observation_cursor` high-water
mark) drops the already-observed prefix so ``observe_batch`` sees every
batch exactly once — the same bounded exactly-once discipline as
:class:`~repro.cluster.sharded.ShardedSequencer`'s pruned intake gate.  An
exhausted restart budget degrades per ``on_shard_loss``: ``"raise"``
surfaces the historical :class:`WorkerCrashed`, ``"exclude"`` finalizes the
merge over the surviving streams and records the loss in
``RuntimeOutcome.details["lost_shards"]``.  Either way the coordinator's
``finally`` terminates and joins every child and drains/closes the result
queue, so no orphaned processes or stuck feeder threads outlive a run.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass
from queue import Empty
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.cluster.harness import replay_messages
from repro.cluster.merge import CrossShardMerger, StreamingMerger
from repro.cluster.tree import MergeTopology
from repro.core.online import OnlineTommySequencer
from repro.core.probability import PrecedenceModel
from repro.network.message import Heartbeat, TimestampedMessage
from repro.obs.telemetry import Telemetry, resolve
from repro.runtime.base import (
    ClockHandle,
    ClusterWorkload,
    RuntimeBackend,
    RuntimeOutcome,
    WallClock,
)
from repro.simulation.event_loop import EventLoop

#: Crash-injection modes: ``exit`` (hard non-zero death, models OOM-kill /
#: segfault), ``error`` (exception inside the shard loop, shipped back as a
#: traceback), ``clean`` (exit code 0 with unfinished shards — the silent
#: failure mode the supervisor's liveness rule exists for).
CRASH_MODES: Tuple[str, ...] = ("exit", "error", "clean")

#: Crash-injection points: ``start`` (before the shard replays anything),
#: ``mid`` (right after the first batch streamed back — mid-recovery state),
#: ``end`` (after the final flush, before the completion summary).
CRASH_POINTS: Tuple[str, ...] = ("start", "mid", "end")

#: Shard-loss modes once the restart budget is exhausted.
SHARD_LOSS_MODES: Tuple[str, ...] = ("raise", "exclude")


class WorkerCrashed(RuntimeError):
    """A shard worker died before finishing its shards."""

    def __init__(self, shard_ids: Sequence[int], detail: str = "") -> None:
        self.shard_ids: Tuple[int, ...] = tuple(sorted(shard_ids))
        message = f"worker process crashed; unfinished shards: {list(self.shard_ids)}"
        if detail:
            message = f"{message}\n{detail}"
        super().__init__(message)


@dataclass(frozen=True)
class RestartPolicy:
    """Bounded-restart, exponential-backoff policy for dead workers.

    A replacement for a dead worker is spawned after
    ``min(backoff_base * 2**restarts_used, backoff_cap)`` seconds; after
    ``max_restarts`` replacements of the same worker slot the slot's
    unfinished shards are handled per the backend's ``on_shard_loss`` mode.
    ``max_restarts=0`` restores the PR 8 fail-fast behaviour.
    """

    max_restarts: int = 2
    backoff_base: float = 0.05
    backoff_cap: float = 2.0

    def __post_init__(self) -> None:
        if self.max_restarts < 0:
            raise ValueError(f"max_restarts must be non-negative, got {self.max_restarts!r}")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff_base and backoff_cap must be non-negative")

    def backoff_for(self, restarts_used: int) -> float:
        """Backoff delay (seconds) before restart number ``restarts_used + 1``."""
        if self.backoff_base <= 0:
            return 0.0
        return min(self.backoff_base * (2.0 ** restarts_used), self.backoff_cap)


@dataclass(frozen=True)
class ShardTask:
    """Everything one worker needs to run one shard (picklable)."""

    shard_index: int
    client_distributions: Dict[str, object]
    known_clients: Tuple[str, ...]
    messages: Tuple[TimestampedMessage, ...]
    config: object
    delay: float
    heartbeat_time: Optional[float]
    heartbeat_timestamp: Optional[float]
    collect_telemetry: bool
    name: str


class _IntakeStage:
    """Worker-side shard-intake shim: records the stage the cluster router
    records on the sim path, then forwards into the shard sequencer — so the
    per-stage tables stay comparable across backends."""

    def __init__(
        self,
        sequencer: OnlineTommySequencer,
        shard_index: int,
        telemetry: Optional[Telemetry],
    ) -> None:
        self._sequencer = sequencer
        self._shard_index = shard_index
        self._obs = resolve(telemetry)

    def receive(
        self, item: Union[TimestampedMessage, Heartbeat], arrival_time: Optional[float] = None
    ) -> None:
        if self._obs.enabled and isinstance(item, TimestampedMessage):
            self._obs.stage(
                "shard_intake", item, self._sequencer.now, shard=self._shard_index
            )
        self._sequencer.receive(item, arrival_time)


#: Crash injection spec shipped to first-incarnation workers only:
#: ``(shard_index, mode, point)``.  Replacements never receive one — a
#: respawned worker must be able to finish the replayed shard.
_CrashSpec = Optional[Tuple[int, str, str]]


def _injected_crash(mode: str, shard: int) -> None:
    if mode == "exit":
        # hard death (simulates OOM-kill/segfault): no error message
        # escapes, the coordinator must notice the corpse
        os._exit(3)
    if mode == "clean":
        # exit code 0 with the shard unfinished: the silent failure the
        # per-process exitcode check used to skip (coordinator hang)
        os._exit(0)
    raise RuntimeError(f"injected failure on shard {shard}")


def _run_shard(task: ShardTask, queue, crash: _CrashSpec = None) -> None:
    """Replay one shard's slice on a private loop, streaming batches back."""
    loop = EventLoop()
    telemetry = Telemetry() if task.collect_telemetry else None
    sequencer = OnlineTommySequencer(
        loop,
        dict(task.client_distributions),
        config=task.config,
        known_clients=list(task.known_clients),
        name=task.name,
        use_engine=True,
        telemetry=telemetry,
        shard_index=task.shard_index,
    )
    started = time.perf_counter()
    streamed = 0

    def on_emit(emitted) -> None:
        nonlocal streamed
        queue.put(("batch", task.shard_index, emitted.batch))
        streamed += 1
        if crash is not None and crash[2] == "mid" and streamed == 1:
            _injected_crash(crash[1], task.shard_index)

    sequencer.subscribe_emissions(on_emit)
    replay_messages(
        loop,
        _IntakeStage(sequencer, task.shard_index, telemetry),
        list(task.messages),
        task.known_clients,
        delay=task.delay,
        heartbeat_time=task.heartbeat_time,
        heartbeat_timestamp=task.heartbeat_timestamp,
    )
    loop.run()
    sequencer.flush()
    if crash is not None and crash[2] == "end":
        _injected_crash(crash[1], task.shard_index)
    summary = {
        "message_count": len(task.messages),
        "batch_count": len(sequencer.emitted_batches),
        "wall_seconds": time.perf_counter() - started,
        "loop": loop.stats(),
        "stages": telemetry.stage_records if telemetry is not None else [],
        "events": telemetry.event_records if telemetry is not None else [],
    }
    queue.put(("done", task.shard_index, summary))


def _worker_main(
    worker_index: int,
    tasks: Sequence[ShardTask],
    queue,
    crash_spec: _CrashSpec,
) -> None:
    """Process entry point: run each assigned shard in turn."""
    for task in tasks:
        try:
            crash = (
                crash_spec
                if crash_spec is not None and crash_spec[0] == task.shard_index
                else None
            )
            if crash is not None and crash[2] == "start":
                _injected_crash(crash[1], task.shard_index)
            _run_shard(task, queue, crash=crash)
        except BaseException:
            queue.put(("error", task.shard_index, traceback.format_exc()))
            return


@dataclass
class _WorkerSlot:
    """Supervision state for one worker slot (stable across incarnations)."""

    index: int
    shards: List[int]
    process: Optional[multiprocessing.process.BaseProcess] = None
    incarnation: int = 0
    restarts_used: int = 0
    drain_polls: int = 0
    #: monotonic deadline of a scheduled respawn (``None`` = not backing off)
    respawn_at: Optional[float] = None
    #: last incarnation whose death has already been handled
    handled_incarnation: int = -1
    lost: bool = False


class WorkerSupervisor:
    """Tracks per-worker liveness/progress and orchestrates restart-with-replay.

    Owned by :meth:`ProcBackend.run` and ticked from the coordinator's poll
    loop (single-threaded — no locks).  On worker death with unfinished
    shards it schedules a backoff, respawns a replacement carrying only the
    unfinished shards' frozen tasks (never the crash-injection spec), and —
    once the :class:`RestartPolicy` budget is spent — either raises
    :class:`WorkerCrashed` or excludes the shards from the run per
    ``on_shard_loss``.  Death detection deliberately ignores the exit code:
    any dead worker with unfinished shards is treated as crashed after a
    short drain grace (``drain_grace`` consecutive empty polls, which also
    guarantees the dead incarnation's buffered queue items were consumed
    before the verdict).
    """

    def __init__(
        self,
        ctx,
        queue,
        tasks: Sequence[ShardTask],
        shards_of: Sequence[Sequence[int]],
        done: Set[int],
        policy: RestartPolicy,
        on_shard_loss: str,
        crash_spec: _CrashSpec,
        telemetry: Optional[Telemetry],
        processes: List,
        drain_grace: int = 3,
    ) -> None:
        self._ctx = ctx
        self._queue = queue
        self._tasks = tasks
        self._done = done
        self._policy = policy
        self._on_shard_loss = on_shard_loss
        self._crash_spec = crash_spec
        self._obs = resolve(telemetry)
        self._processes = processes
        self._drain_grace = max(int(drain_grace), 1)
        self._started_at = time.perf_counter()
        self._slots = [
            _WorkerSlot(index=index, shards=list(shards))
            for index, shards in enumerate(shards_of)
        ]
        self._slot_of_shard: Dict[int, _WorkerSlot] = {
            shard: slot for slot in self._slots for shard in slot.shards
        }
        self.worker_restarts = 0
        self.lost_shards: Set[int] = set()
        self.recovering_shards: Set[int] = set()
        self.shards_recovered: Set[int] = set()

    # --------------------------------------------------------------- telemetry
    def _event(self, name: str, **details: object) -> None:
        if self._obs.enabled:
            self._obs.event(
                "runtime", name, time.perf_counter() - self._started_at, **details
            )

    # ---------------------------------------------------------------- spawning
    def start(self) -> None:
        """Spawn every worker slot's first incarnation."""
        for slot in self._slots:
            self._spawn(slot, slot.shards, self._crash_spec)
            self._event("worker_spawn", worker=slot.index, shards=list(slot.shards))

    def _spawn(self, slot: _WorkerSlot, shard_ids: Sequence[int], crash_spec: _CrashSpec) -> None:
        suffix = f"-r{slot.incarnation}" if slot.incarnation else ""
        process = self._ctx.Process(
            target=_worker_main,
            args=(
                slot.index,
                [self._tasks[shard] for shard in shard_ids],
                self._queue,
                crash_spec,
            ),
            name=f"repro-shard-worker-{slot.index}{suffix}",
            daemon=True,
        )
        process.start()
        self._processes.append(process)
        slot.process = process
        slot.drain_polls = 0
        slot.respawn_at = None

    # -------------------------------------------------------------- liveness
    def _unfinished(self, slot: _WorkerSlot) -> List[int]:
        return [shard for shard in slot.shards if shard not in self._done]

    def note_queue_activity(self) -> None:
        """A queue item arrived: restart every slot's drain-grace countdown.

        The item could have come from a dead incarnation's buffer, so a
        death verdict must wait for a fresh run of consecutive empty polls.
        """
        for slot in self._slots:
            slot.drain_polls = 0

    def note_shard_done(self, shard: int) -> None:
        """Completion bookkeeping for a shard (first ``done`` only)."""
        if shard in self.recovering_shards and shard not in self.shards_recovered:
            self.shards_recovered.add(shard)
            if self._obs.enabled:
                self._obs.count("runtime.shards_recovered")

    def on_error(self, shard: int, detail: str) -> None:
        """A worker shipped a traceback for ``shard`` and is exiting."""
        slot = self._slot_of_shard[shard]
        self._handle_death(slot, detail)

    def tick(self) -> None:
        """Empty-poll heartbeat: detect corpses after the drain grace."""
        for slot in self._slots:
            if slot.lost or slot.respawn_at is not None:
                continue
            if slot.handled_incarnation >= slot.incarnation:
                continue
            process = slot.process
            if process is None or process.is_alive():
                slot.drain_polls = 0
                continue
            if not self._unfinished(slot):
                continue
            slot.drain_polls += 1
            if slot.drain_polls >= self._drain_grace:
                self._handle_death(
                    slot, detail=f"{process.name} exited with code {process.exitcode}"
                )

    def pump(self) -> None:
        """Spawn any replacement whose backoff deadline has passed."""
        now = time.monotonic()
        for slot in self._slots:
            if slot.respawn_at is None or now < slot.respawn_at:
                continue
            unfinished = self._unfinished(slot)
            if not unfinished:
                # the missing results surfaced while we were backing off
                slot.respawn_at = None
                continue
            slot.incarnation += 1
            slot.restarts_used += 1
            self.worker_restarts += 1
            self.recovering_shards.update(unfinished)
            self._spawn(slot, unfinished, crash_spec=None)
            self._event(
                "worker_restart",
                worker=slot.index,
                shards=unfinished,
                incarnation=slot.incarnation,
            )
            if self._obs.enabled:
                self._obs.count("runtime.worker_restarts")

    def _handle_death(self, slot: _WorkerSlot, detail: str) -> None:
        if slot.lost or slot.handled_incarnation >= slot.incarnation:
            return
        slot.handled_incarnation = slot.incarnation
        unfinished = self._unfinished(slot)
        if not unfinished:
            return
        exitcode = slot.process.exitcode if slot.process is not None else None
        self._event(
            "worker_death",
            worker=slot.index,
            shards=unfinished,
            exitcode=exitcode,
            incarnation=slot.incarnation,
        )
        if slot.restarts_used < self._policy.max_restarts:
            delay = self._policy.backoff_for(slot.restarts_used)
            slot.respawn_at = time.monotonic() + delay
            self._event(
                "worker_backoff",
                worker=slot.index,
                delay=delay,
                restarts_used=slot.restarts_used,
            )
            return
        if self._on_shard_loss == "raise":
            raise WorkerCrashed(unfinished, detail=detail)
        # exclude: the run degrades instead of aborting — the lost shards'
        # already-observed batches stay in the merge (mirroring the sim
        # cluster's failover semantics, where pre-crash emissions remain
        # part of the history) and the loss is reported in the outcome
        slot.lost = True
        self.lost_shards.update(unfinished)
        self._done.update(unfinished)
        self._event("shard_loss", worker=slot.index, shards=unfinished)


class ProcBackend(RuntimeBackend):
    """Run each shard in its own worker process, merging in the coordinator."""

    name = "procs"

    def __init__(
        self,
        num_workers: Optional[int] = None,
        telemetry: Optional[Telemetry] = None,
        mp_context: str = "fork",
        poll_timeout: float = 0.1,
        join_timeout: float = 5.0,
        inject_crash: Optional[int] = None,
        crash_mode: str = "exit",
        crash_point: str = "start",
        restart_policy: Optional[RestartPolicy] = None,
        on_shard_loss: str = "raise",
    ) -> None:
        if num_workers is not None and num_workers < 1:
            raise ValueError("num_workers must be positive when given")
        if crash_mode not in CRASH_MODES:
            raise ValueError(f"unknown crash_mode {crash_mode!r}; expected one of {CRASH_MODES}")
        if crash_point not in CRASH_POINTS:
            raise ValueError(
                f"unknown crash_point {crash_point!r}; expected one of {CRASH_POINTS}"
            )
        if on_shard_loss not in SHARD_LOSS_MODES:
            raise ValueError(
                f"unknown on_shard_loss {on_shard_loss!r}; expected one of {SHARD_LOSS_MODES}"
            )
        self._num_workers = num_workers
        self._telemetry = telemetry
        self._obs = resolve(telemetry)
        try:
            self._ctx = multiprocessing.get_context(mp_context)
        except ValueError:
            self._ctx = multiprocessing.get_context()
        self._poll_timeout = poll_timeout
        self._join_timeout = join_timeout
        self._inject_crash = inject_crash
        self._crash_mode = crash_mode
        self._crash_point = crash_point
        self._restart_policy = restart_policy if restart_policy is not None else RestartPolicy()
        self._on_shard_loss = on_shard_loss
        self._clock = WallClock()
        self._procs: List[multiprocessing.process.BaseProcess] = []
        self._queue = None

    @property
    def clock(self) -> ClockHandle:
        """Wall-clock handle (real processes run in real time)."""
        return self._clock

    @property
    def restart_policy(self) -> RestartPolicy:
        """The supervision policy applied to dead workers."""
        return self._restart_policy

    def workers_for(self, num_shards: int) -> int:
        """Actual worker-process count used for an ``num_shards`` workload."""
        if self._num_workers is None:
            return num_shards
        return min(self._num_workers, num_shards)

    def _build_tasks(self, workload: ClusterWorkload, router) -> List[ShardTask]:
        per_shard: List[List[TimestampedMessage]] = [[] for _ in range(workload.num_shards)]
        for message in workload.messages_by_true_time():
            per_shard[router.shard_of(message.client_id)].append(message)
        heartbeat = workload.closing_heartbeat()
        heartbeat_time, heartbeat_timestamp = heartbeat if heartbeat is not None else (None, None)
        return [
            ShardTask(
                shard_index=shard,
                client_distributions={
                    client: workload.client_distributions[client]
                    for client in router.clients_of(shard)
                },
                known_clients=tuple(router.clients_of(shard)),
                messages=tuple(per_shard[shard]),
                config=workload.config,
                delay=workload.replay_delay,
                heartbeat_time=heartbeat_time,
                heartbeat_timestamp=heartbeat_timestamp,
                collect_telemetry=self._telemetry is not None,
                name=f"cluster-shard-{shard}",
            )
            for shard in range(workload.num_shards)
        ]

    def _build_streaming(self, workload: ClusterWorkload, router) -> StreamingMerger:
        # the coordinator runs the exact merger recipe the sim cluster builds
        merge_model = PrecedenceModel(
            method=workload.config.probability_method,
            convolution_points=workload.config.convolution_points,
        )
        for client_id, distribution in workload.client_distributions.items():
            merge_model.register_client(client_id, distribution)
        merger = CrossShardMerger(
            merge_model,
            threshold=workload.config.threshold,
            cycle_policy=workload.config.cycle_policy,
            seed=workload.config.seed if workload.config.seed is not None else 0,
            telemetry=self._telemetry,
        )
        topology: Optional[MergeTopology] = None
        if workload.merge_topology != "flat":
            topology = MergeTopology.build(
                workload.merge_topology,
                workload.num_shards,
                fanout=workload.merge_fanout,
                region_map=router.region_map(),
            )
        return merger.streaming_merger(num_shards=workload.num_shards, topology=topology)

    def run(self, workload: ClusterWorkload) -> RuntimeOutcome:
        """Execute the workload across worker processes and merge live."""
        num_shards = workload.num_shards
        router = workload.build_router()
        tasks = self._build_tasks(workload, router)
        streaming = self._build_streaming(workload, router)

        num_workers = self.workers_for(num_shards)
        queue = self._ctx.Queue()
        self._queue = queue
        shards_of: List[List[int]] = [
            list(range(worker, num_shards, num_workers)) for worker in range(num_workers)
        ]
        crash_spec: _CrashSpec = (
            (self._inject_crash, self._crash_mode, self._crash_point)
            if self._inject_crash is not None
            else None
        )
        done: Set[int] = set()
        supervisor = WorkerSupervisor(
            self._ctx,
            queue,
            tasks,
            shards_of,
            done,
            policy=self._restart_policy,
            on_shard_loss=self._on_shard_loss,
            crash_spec=crash_spec,
            telemetry=self._telemetry,
            processes=self._procs,
        )
        started = time.perf_counter()
        shard_batches: List[List] = [[] for _ in range(num_shards)]
        summaries: Dict[int, dict] = {}
        replayed_deduped = 0
        try:
            supervisor.start()
            while len(done) < num_shards:
                supervisor.pump()
                try:
                    kind, shard, payload = queue.get(timeout=self._poll_timeout)
                except Empty:
                    supervisor.tick()
                    continue
                supervisor.note_queue_activity()
                if kind == "batch":
                    if shard in done:
                        # late buffered emission of a finished or lost shard
                        replayed_deduped += 1
                        continue
                    expected = streaming.observation_cursor(shard)
                    if payload.rank < expected:
                        # a restarted shard replaying its already-observed
                        # prefix (or the dead incarnation's late buffer):
                        # deterministic replay makes it byte-identical to
                        # what the merger already holds — drop it
                        replayed_deduped += 1
                        continue
                    if payload.rank > expected:
                        raise WorkerCrashed(
                            [shard],
                            detail=(
                                f"shard {shard} streamed batch rank {payload.rank} "
                                f"but the merger expected rank {expected}"
                            ),
                        )
                    shard_batches[shard].append(payload)
                    streaming.observe_batch(shard, payload)
                elif kind == "done":
                    if shard in done:
                        continue
                    done.add(shard)
                    summaries[shard] = payload
                    supervisor.note_shard_done(shard)
                elif kind == "error":
                    supervisor.on_error(shard, payload)
            for process in self._procs:
                process.join(timeout=self._join_timeout)
        finally:
            self._cleanup()

        merge = streaming.result()
        wall_seconds = time.perf_counter() - started
        if self._telemetry is not None:
            for shard in sorted(summaries):
                self._telemetry.absorb(summaries[shard]["stages"], summaries[shard]["events"])
        return RuntimeOutcome(
            backend=self.name,
            merge=merge,
            shard_batches=shard_batches,
            message_count=len(workload.messages),
            wall_seconds=wall_seconds,
            num_workers=num_workers,
            telemetry=self._telemetry,
            details={
                "shards_per_worker": [len(shards) for shards in shards_of],
                "worker_restarts": supervisor.worker_restarts,
                "shards_recovered": sorted(supervisor.shards_recovered),
                "lost_shards": sorted(supervisor.lost_shards),
                "replayed_batches_deduped": replayed_deduped,
                "per_shard": {
                    shard: {
                        key: summary[key]
                        for key in ("message_count", "batch_count", "wall_seconds", "loop")
                    }
                    for shard, summary in sorted(summaries.items())
                },
            },
        )

    def _cleanup(self) -> None:
        """Tear down workers and the result queue (idempotent).

        Only processes that were actually started live in ``self._procs``,
        so a partially started pool tears down safely.  The queue is drained
        before the joins (a child blocked on a full pipe must be released)
        and then closed with ``cancel_join_thread`` so a terminated run can
        never deadlock on the queue's feeder thread.
        """
        for process in self._procs:
            if process.is_alive():
                process.terminate()
        queue = self._queue
        if queue is not None:
            try:
                while True:
                    queue.get_nowait()
            except (Empty, OSError, ValueError):
                pass
        for process in self._procs:
            process.join(timeout=self._join_timeout)
        self._procs = []
        if queue is not None:
            self._queue = None
            try:
                queue.close()
                queue.cancel_join_thread()
            except (OSError, ValueError):
                pass

    def close(self) -> None:
        """Terminate any worker processes still alive (idempotent)."""
        self._cleanup()


__all__ = [
    "CRASH_MODES",
    "CRASH_POINTS",
    "SHARD_LOSS_MODES",
    "ProcBackend",
    "RestartPolicy",
    "ShardTask",
    "WorkerCrashed",
    "WorkerSupervisor",
]
