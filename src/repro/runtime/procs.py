"""ProcBackend: real worker processes per shard, coordinator-side merge.

The second execution backend: every shard's
:class:`~repro.core.online.OnlineTommySequencer` runs in its own worker
process (``multiprocessing`` + a result queue), replaying its slice of the
workload on a private event loop, while the coordinator process feeds each
emitted batch into the existing
:class:`~repro.cluster.merge.StreamingMerger` as it streams back.
Throughput now scales with cores; the merged order is still *bitwise equal*
to :class:`~repro.runtime.sim.SimBackend` on the same workload because

* the workload's message timestamps are generated **once** and frozen in
  the :class:`~repro.runtime.base.ClusterWorkload` — both backends replay
  identical inputs at identical virtual times through the shared
  :func:`~repro.cluster.harness.replay_messages` primitive;
* every worker receives the *global* closing-heartbeat instant/beacon, so
  each shard closes its completeness horizon exactly where the sim cluster
  does;
* per-shard sequencer RNG streams depend only on ``config.seed``, and the
  shard→client assignment comes from the same sorted
  :class:`~repro.cluster.router.ShardRouter` construction;
* the streaming merger's result is invariant to the order batches from
  *different* shards are observed in (parity-tested since PR 4), so the
  nondeterministic queue arrival interleaving cannot change the output.

Workers ship their telemetry stage/event records back in their completion
summary; the coordinator absorbs them into its own hub
(:meth:`~repro.obs.telemetry.Telemetry.absorb`), so per-stage latency
tables and perfetto timelines come out directly comparable with the sim
backend — sim-time tracks line up, wall-time stamps show the real overlap.

Failure model: a worker that dies (non-zero exit, killed, or an exception
inside the shard loop) surfaces as :class:`WorkerCrashed` naming the
unfinished shard ids; the coordinator's ``finally`` terminates and joins
every child, so no orphaned processes outlive a failed run.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass
from queue import Empty
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.cluster.harness import replay_messages
from repro.cluster.merge import CrossShardMerger
from repro.cluster.tree import MergeTopology
from repro.core.online import OnlineTommySequencer
from repro.core.probability import PrecedenceModel
from repro.network.message import Heartbeat, TimestampedMessage
from repro.obs.telemetry import Telemetry, resolve
from repro.runtime.base import (
    ClockHandle,
    ClusterWorkload,
    RuntimeBackend,
    RuntimeOutcome,
    WallClock,
)
from repro.simulation.event_loop import EventLoop


class WorkerCrashed(RuntimeError):
    """A shard worker died before finishing its shards."""

    def __init__(self, shard_ids: Sequence[int], detail: str = "") -> None:
        self.shard_ids: Tuple[int, ...] = tuple(sorted(shard_ids))
        message = f"worker process crashed; unfinished shards: {list(self.shard_ids)}"
        if detail:
            message = f"{message}\n{detail}"
        super().__init__(message)


@dataclass(frozen=True)
class ShardTask:
    """Everything one worker needs to run one shard (picklable)."""

    shard_index: int
    client_distributions: Dict[str, object]
    known_clients: Tuple[str, ...]
    messages: Tuple[TimestampedMessage, ...]
    config: object
    delay: float
    heartbeat_time: Optional[float]
    heartbeat_timestamp: Optional[float]
    collect_telemetry: bool
    name: str


class _IntakeStage:
    """Worker-side shard-intake shim: records the stage the cluster router
    records on the sim path, then forwards into the shard sequencer — so the
    per-stage tables stay comparable across backends."""

    def __init__(
        self,
        sequencer: OnlineTommySequencer,
        shard_index: int,
        telemetry: Optional[Telemetry],
    ) -> None:
        self._sequencer = sequencer
        self._shard_index = shard_index
        self._obs = resolve(telemetry)

    def receive(
        self, item: Union[TimestampedMessage, Heartbeat], arrival_time: Optional[float] = None
    ) -> None:
        if self._obs.enabled and isinstance(item, TimestampedMessage):
            self._obs.stage(
                "shard_intake", item, self._sequencer.now, shard=self._shard_index
            )
        self._sequencer.receive(item, arrival_time)


def _run_shard(task: ShardTask, queue) -> None:
    """Replay one shard's slice on a private loop, streaming batches back."""
    loop = EventLoop()
    telemetry = Telemetry() if task.collect_telemetry else None
    sequencer = OnlineTommySequencer(
        loop,
        dict(task.client_distributions),
        config=task.config,
        known_clients=list(task.known_clients),
        name=task.name,
        use_engine=True,
        telemetry=telemetry,
        shard_index=task.shard_index,
    )
    started = time.perf_counter()
    sequencer.subscribe_emissions(
        lambda emitted: queue.put(("batch", task.shard_index, emitted.batch))
    )
    replay_messages(
        loop,
        _IntakeStage(sequencer, task.shard_index, telemetry),
        list(task.messages),
        task.known_clients,
        delay=task.delay,
        heartbeat_time=task.heartbeat_time,
        heartbeat_timestamp=task.heartbeat_timestamp,
    )
    loop.run()
    sequencer.flush()
    summary = {
        "message_count": len(task.messages),
        "batch_count": len(sequencer.emitted_batches),
        "wall_seconds": time.perf_counter() - started,
        "loop": loop.stats(),
        "stages": telemetry.stage_records if telemetry is not None else [],
        "events": telemetry.event_records if telemetry is not None else [],
    }
    queue.put(("done", task.shard_index, summary))


def _worker_main(
    worker_index: int,
    tasks: Sequence[ShardTask],
    queue,
    inject_crash: Optional[int],
    crash_mode: str,
) -> None:
    """Process entry point: run each assigned shard in turn."""
    for task in tasks:
        try:
            if inject_crash is not None and task.shard_index == inject_crash:
                if crash_mode == "exit":
                    # hard death (simulates OOM-kill/segfault): no error
                    # message escapes, the coordinator must notice the corpse
                    os._exit(3)
                raise RuntimeError(f"injected failure on shard {task.shard_index}")
            _run_shard(task, queue)
        except BaseException:
            queue.put(("error", task.shard_index, traceback.format_exc()))
            return


class ProcBackend(RuntimeBackend):
    """Run each shard in its own worker process, merging in the coordinator."""

    name = "procs"

    def __init__(
        self,
        num_workers: Optional[int] = None,
        telemetry: Optional[Telemetry] = None,
        mp_context: str = "fork",
        poll_timeout: float = 0.1,
        join_timeout: float = 5.0,
        inject_crash: Optional[int] = None,
        crash_mode: str = "exit",
    ) -> None:
        if num_workers is not None and num_workers < 1:
            raise ValueError("num_workers must be positive when given")
        if crash_mode not in ("exit", "error"):
            raise ValueError(f"unknown crash_mode {crash_mode!r}")
        self._num_workers = num_workers
        self._telemetry = telemetry
        try:
            self._ctx = multiprocessing.get_context(mp_context)
        except ValueError:
            self._ctx = multiprocessing.get_context()
        self._poll_timeout = poll_timeout
        self._join_timeout = join_timeout
        self._inject_crash = inject_crash
        self._crash_mode = crash_mode
        self._clock = WallClock()
        self._procs: List[multiprocessing.Process] = []

    @property
    def clock(self) -> ClockHandle:
        """Wall-clock handle (real processes run in real time)."""
        return self._clock

    def workers_for(self, num_shards: int) -> int:
        """Actual worker-process count used for an ``num_shards`` workload."""
        if self._num_workers is None:
            return num_shards
        return min(self._num_workers, num_shards)

    def run(self, workload: ClusterWorkload) -> RuntimeOutcome:
        """Execute the workload across worker processes and merge live."""
        num_shards = workload.num_shards
        router = workload.build_router()
        per_shard: List[List[TimestampedMessage]] = [[] for _ in range(num_shards)]
        for message in workload.messages_by_true_time():
            per_shard[router.shard_of(message.client_id)].append(message)
        heartbeat = workload.closing_heartbeat()
        heartbeat_time, heartbeat_timestamp = heartbeat if heartbeat is not None else (None, None)

        tasks = [
            ShardTask(
                shard_index=shard,
                client_distributions={
                    client: workload.client_distributions[client]
                    for client in router.clients_of(shard)
                },
                known_clients=tuple(router.clients_of(shard)),
                messages=tuple(per_shard[shard]),
                config=workload.config,
                delay=workload.replay_delay,
                heartbeat_time=heartbeat_time,
                heartbeat_timestamp=heartbeat_timestamp,
                collect_telemetry=self._telemetry is not None,
                name=f"cluster-shard-{shard}",
            )
            for shard in range(num_shards)
        ]

        # the coordinator runs the exact merger recipe the sim cluster builds
        merge_model = PrecedenceModel(
            method=workload.config.probability_method,
            convolution_points=workload.config.convolution_points,
        )
        for client_id, distribution in workload.client_distributions.items():
            merge_model.register_client(client_id, distribution)
        merger = CrossShardMerger(
            merge_model,
            threshold=workload.config.threshold,
            cycle_policy=workload.config.cycle_policy,
            seed=workload.config.seed if workload.config.seed is not None else 0,
            telemetry=self._telemetry,
        )
        topology: Optional[MergeTopology] = None
        if workload.merge_topology != "flat":
            topology = MergeTopology.build(
                workload.merge_topology,
                num_shards,
                fanout=workload.merge_fanout,
                region_map=router.region_map(),
            )
        streaming = merger.streaming_merger(num_shards=num_shards, topology=topology)

        num_workers = self.workers_for(num_shards)
        queue = self._ctx.Queue()
        shards_of: List[List[int]] = [
            list(range(worker, num_shards, num_workers)) for worker in range(num_workers)
        ]
        self._procs = [
            self._ctx.Process(
                target=_worker_main,
                args=(
                    worker,
                    [tasks[shard] for shard in shards_of[worker]],
                    queue,
                    self._inject_crash,
                    self._crash_mode,
                ),
                name=f"repro-shard-worker-{worker}",
                daemon=True,
            )
            for worker in range(num_workers)
        ]
        started = time.perf_counter()
        shard_batches: List[List] = [[] for _ in range(num_shards)]
        summaries: Dict[int, dict] = {}
        done: set = set()
        stalled_polls = 0
        try:
            for process in self._procs:
                process.start()
            while len(done) < num_shards:
                try:
                    kind, shard, payload = queue.get(timeout=self._poll_timeout)
                except Empty:
                    stalled_polls = self._check_workers(done, shards_of, stalled_polls)
                    continue
                stalled_polls = 0
                if kind == "batch":
                    shard_batches[shard].append(payload)
                    streaming.observe_batch(shard, payload)
                elif kind == "done":
                    done.add(shard)
                    summaries[shard] = payload
                elif kind == "error":
                    raise WorkerCrashed([shard], detail=payload)
            for process in self._procs:
                process.join(timeout=self._join_timeout)
        finally:
            for process in self._procs:
                if process.is_alive():
                    process.terminate()
            for process in self._procs:
                process.join(timeout=self._join_timeout)
            self._procs = []

        merge = streaming.result()
        wall_seconds = time.perf_counter() - started
        if self._telemetry is not None:
            for shard in sorted(summaries):
                self._telemetry.absorb(summaries[shard]["stages"], summaries[shard]["events"])
        return RuntimeOutcome(
            backend=self.name,
            merge=merge,
            shard_batches=shard_batches,
            message_count=len(workload.messages),
            wall_seconds=wall_seconds,
            num_workers=num_workers,
            telemetry=self._telemetry,
            details={
                "shards_per_worker": [len(shards) for shards in shards_of],
                "per_shard": {
                    shard: {
                        key: summary[key]
                        for key in ("message_count", "batch_count", "wall_seconds", "loop")
                    }
                    for shard, summary in sorted(summaries.items())
                },
            },
        )

    def _check_workers(
        self, done: set, shards_of: List[List[int]], stalled_polls: int
    ) -> int:
        """Raise :class:`WorkerCrashed` when a dead worker left shards behind."""
        for process, shards in zip(self._procs, shards_of):
            unfinished = [shard for shard in shards if shard not in done]
            if not unfinished:
                continue
            if not process.is_alive() and process.exitcode not in (0, None):
                raise WorkerCrashed(
                    unfinished, detail=f"{process.name} exited with code {process.exitcode}"
                )
        if all(not process.is_alive() for process in self._procs):
            # every worker exited cleanly yet shards are missing: give the
            # queue a few polls to drain buffered results, then give up
            stalled_polls += 1
            if stalled_polls >= 5:
                unfinished = [
                    shard
                    for shards in shards_of
                    for shard in shards
                    if shard not in done
                ]
                raise WorkerCrashed(unfinished, detail="workers exited without results")
        return stalled_polls

    def close(self) -> None:
        """Terminate any worker processes still alive (idempotent)."""
        for process in self._procs:
            if process.is_alive():
                process.terminate()
        for process in self._procs:
            process.join(timeout=self._join_timeout)
        self._procs = []


__all__ = ["ProcBackend", "ShardTask", "WorkerCrashed"]
