"""Live (non-frozen) workload dispatch beside the frozen ``ShardTask`` path.

:class:`LiveDispatcher` is the coordinator-side intake loop for traffic that
does *not* exist up front: messages are submitted one at a time (by the
socket edge in :mod:`repro.edge`, or directly by tests), gated through the
same exactly-once :class:`~repro.cluster.intake.IntakeDedupeGate` the sharded
cluster uses, and sequenced incrementally on the selected runtime —

* ``runtime="sim"`` — a :class:`~repro.cluster.sharded.ShardedSequencer` on a
  private deterministic :class:`~repro.simulation.event_loop.EventLoop`,
  routed through the cluster's public ``receive`` wrapper;
* ``runtime="procs"`` — one live worker process per shard slice (the
  streaming counterpart of :class:`repro.runtime.procs.ProcBackend`), fed
  watermark-batched waves over a command queue, with the coordinator folding
  emitted batches into the same :class:`~repro.cluster.merge.StreamingMerger`
  recipe under the observation-cursor exactly-once check.

Parity contract: virtual time is carried on every submitted message
(``true_time``); each source (connection) promises per-source monotone
``true_time``\\ s (FIFO), so the global watermark — the min over open
sources' high-water marks — bounds every future arrival.  The dispatcher
schedules buffered arrivals at ``true_time + delay`` with priority ``-1``
(arrivals beat same-instant emission checks, exactly as pre-scheduled
arrivals beat mid-run-scheduled checks in the frozen replay) and advances the
loop *strictly below* the watermark, so a frozen workload streamed through
``submit()`` executes the identical event sequence as
:func:`~repro.cluster.harness.replay_messages` and yields a bitwise-equal
``RuntimeOutcome.fingerprint()`` (pinned in ``tests/edge`` /
``tests/runtime/test_live_dispatcher.py``).  With equal ``true_time`` ties
across *different* sources the relative order is submission order (the
generated workloads draw continuous unique times, so ties never arise
there).

Failure model: live procs workers fail fast — a dead worker raises
:class:`~repro.runtime.procs.WorkerCrashed` (there is no frozen task to
replay; a replayable intake log is the ROADMAP follow-up).
"""

from __future__ import annotations

import math
import multiprocessing
import time
import traceback
from dataclasses import dataclass, field
from queue import Empty
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.cluster.intake import IntakeDedupeGate
from repro.cluster.merge import CrossShardMerger, StreamingMerger
from repro.cluster.sharded import ShardedSequencer
from repro.cluster.tree import MergeTopology
from repro.core.config import TommyConfig
from repro.core.online import OnlineTommySequencer
from repro.core.probability import PrecedenceModel
from repro.network.message import Heartbeat, TimestampedMessage
from repro.obs.telemetry import Telemetry, resolve
from repro.runtime.base import ClusterWorkload, RuntimeOutcome
from repro.runtime.procs import WorkerCrashed
from repro.simulation.event_loop import EventLoop

#: Runtime modes the live dispatcher can host.
LIVE_RUNTIMES: Tuple[str, ...] = ("sim", "procs")

_NEG_INF = float("-inf")


def _strictly_before(instant: float) -> float:
    """Largest float below ``instant`` — the exclusive ``run(until=...)`` bound.

    Arrivals exactly *at* the watermark stay pending: a well-behaved source
    may still send another message at its current watermark, and that late
    twin must be schedulable before anything at that instant executes.
    """
    return math.nextafter(instant, _NEG_INF)


@dataclass(frozen=True)
class LiveClusterSpec:
    """Static cluster shape for a live run (the non-frozen ``ClusterWorkload``).

    Everything :class:`ClusterWorkload` freezes *except* the messages: the
    provisioned client population (with offset distributions), shard count,
    sequencer config, merge topology, and the replay delay / closing
    heartbeat slack used to mirror the frozen closing-horizon rule at drain
    time.
    """

    client_distributions: Dict[str, object]
    num_shards: int
    config: TommyConfig = field(default_factory=TommyConfig)
    policy: Optional[object] = None
    merge_topology: str = "flat"
    merge_fanout: int = 2
    delay: float = 0.0
    heartbeat_slack: float = 1e-3

    @classmethod
    def from_workload(cls, workload: ClusterWorkload) -> "LiveClusterSpec":
        """Adopt a frozen workload's shape (used by the parity harness)."""
        return cls(
            client_distributions=dict(workload.client_distributions),
            num_shards=workload.num_shards,
            config=workload.config,
            policy=workload.policy,
            merge_topology=workload.merge_topology,
            merge_fanout=workload.merge_fanout,
            delay=workload.replay_delay,
            heartbeat_slack=workload.heartbeat_slack,
        )

    def client_ids(self) -> Tuple[str, ...]:
        """All provisioned client ids (sorted)."""
        return tuple(sorted(self.client_distributions))


@dataclass(frozen=True)
class _LiveShardSpec:
    """Per-shard bootstrap shipped to a live worker process (picklable)."""

    shard_index: int
    client_distributions: Dict[str, object]
    known_clients: Tuple[str, ...]
    config: object
    delay: float
    collect_telemetry: bool
    name: str


def _schedule_arrival(loop: EventLoop, receiver, item, delay: float) -> bool:
    """Schedule one live arrival at its virtual time; return ``True`` if late.

    Mirrors :func:`~repro.cluster.harness.replay_messages`'s
    ``max(true_time + delay, now)`` clamp; priority ``-1`` keeps arrivals
    ahead of same-instant emission-check events (see module docstring).
    """
    due = item.true_time + delay
    now = loop.now
    late = due < now
    loop.schedule_at(max(due, now), receiver.receive, item, priority=-1)
    return late


def _live_worker_main(shard_specs: Sequence[_LiveShardSpec], in_queue, out_queue) -> None:
    """Live worker entry point: host shard sequencers, consume wave commands.

    Commands (from the coordinator):

    * ``("wave", items_by_shard, watermark)`` — schedule each shard's new
      arrivals and advance every hosted shard's loop strictly below
      ``watermark + delay``;
    * ``("close", heartbeat_time, heartbeat_timestamp)`` — inject the global
      closing heartbeats (sorted client order, like the frozen replay), run
      to completion, flush, ship per-shard ``("done", shard, summary)`` and
      exit.

    Every emission streams back immediately as ``("batch", shard, batch)``,
    the same result protocol as the frozen :func:`_run_shard` path.
    """
    current_shard = -1
    try:
        started = time.perf_counter()
        shards = []
        for spec in shard_specs:
            loop = EventLoop()
            telemetry = Telemetry() if spec.collect_telemetry else None
            sequencer = OnlineTommySequencer(
                loop,
                dict(spec.client_distributions),
                config=spec.config,
                known_clients=list(spec.known_clients),
                name=spec.name,
                use_engine=True,
                telemetry=telemetry,
                shard_index=spec.shard_index,
            )

            def on_emit(emitted, _shard=spec.shard_index) -> None:
                out_queue.put(("batch", _shard, emitted.batch))

            sequencer.subscribe_emissions(on_emit)
            shards.append((spec, loop, sequencer, telemetry))
        received = {spec.shard_index: 0 for spec in shard_specs}
        while True:
            command = in_queue.get()
            kind = command[0]
            if kind == "wave":
                _, items_by_shard, watermark = command
                for spec, loop, sequencer, _ in shards:
                    current_shard = spec.shard_index
                    for item in items_by_shard.get(spec.shard_index, ()):
                        _schedule_arrival(loop, sequencer, item, spec.delay)
                        if isinstance(item, TimestampedMessage):
                            received[spec.shard_index] += 1
                    if watermark is not None and math.isfinite(watermark):
                        loop.run(until=_strictly_before(watermark + spec.delay))
            elif kind == "close":
                _, heartbeat_time, heartbeat_timestamp = command
                for spec, loop, sequencer, telemetry in shards:
                    current_shard = spec.shard_index
                    if heartbeat_time is not None and heartbeat_timestamp is not None:
                        for client_id in sorted(spec.known_clients):
                            heartbeat = Heartbeat(
                                client_id=client_id,
                                timestamp=heartbeat_timestamp,
                                true_time=heartbeat_time,
                            )
                            loop.schedule_at(
                                heartbeat_time, sequencer.receive, heartbeat, priority=-1
                            )
                    loop.run()
                    sequencer.flush()
                    summary = {
                        "message_count": received[spec.shard_index],
                        "batch_count": len(sequencer.emitted_batches),
                        "wall_seconds": time.perf_counter() - started,
                        "loop": loop.stats(),
                        "stages": telemetry.stage_records if telemetry is not None else [],
                        "events": telemetry.event_records if telemetry is not None else [],
                    }
                    out_queue.put(("done", spec.shard_index, summary))
                return
            else:  # pragma: no cover - defensive
                raise RuntimeError(f"unknown live worker command {kind!r}")
    except BaseException:
        out_queue.put(("error", current_shard, traceback.format_exc()))


class LiveDispatcher:
    """Coordinator intake loop for live traffic on a selected runtime.

    Lifecycle: ``open_source`` per connection, ``submit``/``submit_heartbeat``
    per frame (synchronous admit/reject through the exactly-once gate — the
    returned bool is what the edge acks), ``advance`` after each intake burst
    (flushes the watermark-safe wave into the runtime), ``close_source`` on
    disconnect, then ``finish`` to drain with the frozen closing-heartbeat
    rule and collect a :class:`RuntimeOutcome`.
    """

    def __init__(
        self,
        spec: LiveClusterSpec,
        runtime: str = "sim",
        num_workers: Optional[int] = None,
        telemetry: Optional[Telemetry] = None,
        dedupe_intake: bool = True,
        mp_context: str = "fork",
        poll_timeout: float = 0.1,
        join_timeout: float = 5.0,
    ) -> None:
        if runtime not in LIVE_RUNTIMES:
            raise ValueError(f"unknown live runtime {runtime!r}; expected one of {LIVE_RUNTIMES}")
        self._spec = spec
        self._runtime = runtime
        self._telemetry = telemetry
        self._obs = resolve(telemetry)
        self._gate = IntakeDedupeGate(
            enabled=dedupe_intake,
            telemetry=telemetry,
            clock=lambda: self._max_vtime if self._max_vtime is not None else 0.0,
        )
        self._started = time.perf_counter()
        self._poll_timeout = poll_timeout
        self._join_timeout = join_timeout
        # per-source virtual-time high-water marks (the watermark inputs)
        self._sources: Dict[str, float] = {}
        self._advanced_to = _NEG_INF
        # admitted-but-unscheduled items, in submission order
        self._buffer: List[Tuple[float, float, str, int, int, object]] = []
        self._buffer_seq = 0
        self._max_vtime: Optional[float] = None
        self._max_timestamp: Optional[float] = None
        self._admitted = 0
        self._late = 0
        self._finished: Optional[RuntimeOutcome] = None

        if runtime == "sim":
            self._loop = EventLoop(0.0)
            self._cluster = ShardedSequencer(
                self._loop,
                dict(spec.client_distributions),
                num_shards=spec.num_shards,
                config=spec.config,
                policy=spec.policy,
                streaming_merge=True,
                dedupe_intake=False,  # the dispatcher's gate already admitted
                telemetry=telemetry,
                merge_topology=spec.merge_topology,
                merge_fanout=spec.merge_fanout,
            )
            self._router = self._cluster.router
            self._num_workers = 1
        else:
            self._start_procs(num_workers, mp_context)

    # ----------------------------------------------------------- procs setup
    def _start_procs(self, num_workers: Optional[int], mp_context: str) -> None:
        spec = self._spec
        try:
            ctx = multiprocessing.get_context(mp_context)
        except ValueError:
            ctx = multiprocessing.get_context()
        # same sorted router construction as ClusterWorkload.build_router /
        # ShardedSequencer.__init__ — all paths agree on shard ownership
        from repro.cluster.router import ShardRouter

        router = ShardRouter(spec.num_shards, spec.policy)
        for client_id in sorted(spec.client_distributions):
            router.assign(client_id)
        self._router = router

        merge_model = PrecedenceModel(
            method=spec.config.probability_method,
            convolution_points=spec.config.convolution_points,
        )
        for client_id, distribution in spec.client_distributions.items():
            merge_model.register_client(client_id, distribution)
        merger = CrossShardMerger(
            merge_model,
            threshold=spec.config.threshold,
            cycle_policy=spec.config.cycle_policy,
            seed=spec.config.seed if spec.config.seed is not None else 0,
            telemetry=self._telemetry,
        )
        topology: Optional[MergeTopology] = None
        if spec.merge_topology != "flat":
            topology = MergeTopology.build(
                spec.merge_topology,
                spec.num_shards,
                fanout=spec.merge_fanout,
                region_map=router.region_map(),
            )
        self._streaming: StreamingMerger = merger.streaming_merger(
            num_shards=spec.num_shards, topology=topology
        )
        self._shard_batches: List[List] = [[] for _ in range(spec.num_shards)]
        self._done_shards: Set[int] = set()
        self._summaries: Dict[int, dict] = {}

        workers = spec.num_shards if num_workers is None else min(num_workers, spec.num_shards)
        self._num_workers = max(workers, 1)
        self._out_queue = ctx.Queue()
        self._in_queues = []
        self._procs: List[multiprocessing.process.BaseProcess] = []
        self._worker_of_shard: Dict[int, int] = {}
        for worker in range(self._num_workers):
            shard_ids = list(range(worker, spec.num_shards, self._num_workers))
            shard_specs = [
                _LiveShardSpec(
                    shard_index=shard,
                    client_distributions={
                        client: spec.client_distributions[client]
                        for client in router.clients_of(shard)
                    },
                    known_clients=tuple(router.clients_of(shard)),
                    config=spec.config,
                    delay=spec.delay,
                    collect_telemetry=self._telemetry is not None,
                    name=f"cluster-shard-{shard}",
                )
                for shard in shard_ids
            ]
            for shard in shard_ids:
                self._worker_of_shard[shard] = worker
            in_queue = ctx.Queue()
            process = ctx.Process(
                target=_live_worker_main,
                args=(shard_specs, in_queue, self._out_queue),
                name=f"repro-live-worker-{worker}",
                daemon=True,
            )
            process.start()
            self._in_queues.append(in_queue)
            self._procs.append(process)

    # ------------------------------------------------------------- properties
    @property
    def runtime(self) -> str:
        """The hosting runtime (``"sim"`` or ``"procs"``)."""
        return self._runtime

    @property
    def spec(self) -> LiveClusterSpec:
        """The static cluster shape this dispatcher hosts."""
        return self._spec

    @property
    def gate(self) -> IntakeDedupeGate:
        """The exactly-once admission gate (shared semantics with the cluster)."""
        return self._gate

    @property
    def admitted(self) -> int:
        """Messages admitted (gate-passed) so far."""
        return self._admitted

    @property
    def late_arrivals(self) -> int:
        """Messages that violated the watermark contract (clamped to now).

        Late arrivals are still sequenced (at the earliest possible virtual
        instant) but bitwise parity with the one-shot replay only holds when
        this stays zero — sources must keep per-source ``true_time``
        monotone.
        """
        return self._late

    @property
    def watermark(self) -> float:
        """Current global watermark (min over open sources; ``+inf`` if none)."""
        if not self._sources:
            return math.inf
        return min(self._sources.values())

    @property
    def open_sources(self) -> int:
        """Number of sources currently holding the watermark."""
        return len(self._sources)

    # ---------------------------------------------------------------- sources
    def open_source(self, source_id: str) -> None:
        """Register a source (connection); it now holds the global watermark."""
        if self._finished is not None:
            raise RuntimeError("dispatcher already finished")
        self._sources.setdefault(source_id, _NEG_INF)

    def close_source(self, source_id: str) -> None:
        """Release a source's watermark hold (its buffered traffic stays)."""
        self._sources.pop(source_id, None)

    # ----------------------------------------------------------------- intake
    def submit(self, source_id: str, message: TimestampedMessage) -> bool:
        """Gate and buffer one live message; returns ``True`` when admitted.

        The decision is synchronous so the edge can ack it: an admitted
        message *will* be sequenced exactly once; a rejected one is a
        duplicate (same ``(client_id, message_id)`` key or below the
        delivery horizon).
        """
        if self._finished is not None:
            raise RuntimeError("dispatcher already finished")
        if message.client_id not in self._spec.client_distributions:
            raise KeyError(f"unknown client {message.client_id!r}")
        self._note_vtime(source_id, message.true_time)
        if self._gate.is_duplicate(message):
            return False
        vtime = message.true_time
        self._buffer.append(
            (
                vtime,
                message.timestamp,
                message.client_id,
                int(message.sequence_number),
                self._buffer_seq,
                message,
            )
        )
        self._buffer_seq += 1
        self._admitted += 1
        self._max_vtime = vtime if self._max_vtime is None else max(self._max_vtime, vtime)
        self._max_timestamp = (
            message.timestamp
            if self._max_timestamp is None
            else max(self._max_timestamp, message.timestamp)
        )
        if self._obs.enabled:
            self._obs.count("live.messages_admitted")
        return True

    def submit_heartbeat(self, source_id: str, heartbeat: Heartbeat) -> None:
        """Buffer a live heartbeat; advances the source watermark and the
        gate's delivery horizon (idempotent, never rejected)."""
        if self._finished is not None:
            raise RuntimeError("dispatcher already finished")
        self._note_vtime(source_id, heartbeat.true_time)
        self._gate.is_duplicate(heartbeat)  # horizon advance only
        self._buffer.append(
            (
                heartbeat.true_time,
                heartbeat.timestamp,
                heartbeat.client_id,
                int(heartbeat.sequence_number),
                self._buffer_seq,
                heartbeat,
            )
        )
        self._buffer_seq += 1

    def _note_vtime(self, source_id: str, vtime: float) -> None:
        current = self._sources.get(source_id, _NEG_INF)
        if vtime > current:
            self._sources[source_id] = vtime

    # ---------------------------------------------------------------- advance
    def advance(self) -> float:
        """Flush the watermark-safe wave into the runtime; returns the watermark.

        Buffered items with ``true_time <= watermark`` are scheduled (sorted
        by ``(true_time, timestamp, client_id, sequence, submission)``) and
        the runtime advances strictly below ``watermark + delay``; everything
        above the watermark stays buffered for a later wave.
        """
        if self._finished is not None:
            raise RuntimeError("dispatcher already finished")
        watermark = self.watermark
        self._flush_wave(watermark)
        if self._obs.enabled and math.isfinite(watermark):
            self._obs.gauge("live.watermark", watermark)
        if self._runtime == "procs":
            self._drain_results(block=False)
        return watermark

    def _take_wave(self, watermark: float) -> List[object]:
        if not self._buffer:
            return []
        ready = [entry for entry in self._buffer if entry[0] <= watermark]
        if not ready:
            return []
        self._buffer = [entry for entry in self._buffer if entry[0] > watermark]
        ready.sort(key=lambda entry: entry[:5])
        return [entry[5] for entry in ready]

    def _flush_wave(self, watermark: float) -> None:
        wave = self._take_wave(watermark)
        run_to = watermark if math.isfinite(watermark) and watermark > self._advanced_to else None
        if self._runtime == "sim":
            for item in wave:
                if _schedule_arrival(self._loop, self._cluster, item, self._spec.delay):
                    self._late_arrival()
            if run_to is not None:
                self._loop.run(until=_strictly_before(run_to + self._spec.delay))
        else:
            if wave or run_to is not None:
                by_worker: List[Dict[int, List[object]]] = [
                    {} for _ in range(self._num_workers)
                ]
                for item in wave:
                    shard = self._router.shard_of(item.client_id)
                    by_worker[self._worker_of_shard[shard]].setdefault(shard, []).append(item)
                    if item.true_time + self._spec.delay < self._advanced_to + self._spec.delay:
                        self._late_arrival()
                for worker, in_queue in enumerate(self._in_queues):
                    in_queue.put(("wave", by_worker[worker], run_to))
        if run_to is not None:
            self._advanced_to = run_to

    def _late_arrival(self) -> None:
        self._late += 1
        if self._obs.enabled:
            self._obs.count("live.late_arrivals")

    # ----------------------------------------------------------- procs drain
    def _observe(self, shard: int, batch) -> None:
        if shard in self._done_shards:
            return
        expected = self._streaming.observation_cursor(shard)
        if batch.rank < expected:
            return  # duplicate stream prefix (exactly-once observation)
        if batch.rank > expected:
            raise WorkerCrashed(
                [shard],
                detail=(
                    f"live shard {shard} streamed batch rank {batch.rank} "
                    f"but the merger expected rank {expected}"
                ),
            )
        self._shard_batches[shard].append(batch)
        self._streaming.observe_batch(shard, batch)

    def _drain_results(self, block: bool) -> None:
        while len(self._done_shards) < self._spec.num_shards:
            try:
                timeout = self._poll_timeout if block else None
                if block:
                    kind, shard, payload = self._out_queue.get(timeout=timeout)
                else:
                    kind, shard, payload = self._out_queue.get_nowait()
            except Empty:
                if block and not any(process.is_alive() for process in self._procs):
                    missing = sorted(
                        set(range(self._spec.num_shards)) - self._done_shards
                    )
                    raise WorkerCrashed(missing, detail="live worker died mid-stream")
                if not block:
                    return
                continue
            if kind == "batch":
                self._observe(shard, payload)
            elif kind == "done":
                self._done_shards.add(shard)
                self._summaries[shard] = payload
            elif kind == "error":
                missing = sorted(set(range(self._spec.num_shards)) - self._done_shards)
                raise WorkerCrashed(missing or [shard], detail=str(payload))

    # ----------------------------------------------------------------- finish
    def closing_heartbeat(self) -> Optional[Tuple[float, float]]:
        """``(true_time, beacon)`` of the drain heartbeats, frozen-rule shaped.

        Computed over *observed* admitted traffic exactly as
        :meth:`ClusterWorkload.closing_heartbeat` computes it over frozen
        messages: ``max(true_time) + delay + slack`` with beacon
        ``max(timestamp) + slack``.
        """
        if self._max_vtime is None or self._max_timestamp is None:
            return None
        return (
            self._max_vtime + self._spec.delay + self._spec.heartbeat_slack,
            self._max_timestamp + self._spec.heartbeat_slack,
        )

    def finish(self) -> RuntimeOutcome:
        """Drain everything, close the completeness horizon, collect the outcome.

        Remaining buffered traffic is flushed (sources no longer hold the
        watermark back), every provisioned client sends the closing
        heartbeat at the frozen-rule instant, and the runtime runs to
        completion.  Idempotent: later calls return the same outcome.
        """
        if self._finished is not None:
            return self._finished
        self._sources.clear()
        heartbeat = self.closing_heartbeat()
        heartbeat_time, heartbeat_timestamp = (
            heartbeat if heartbeat is not None else (None, None)
        )
        if self._runtime == "sim":
            self._flush_wave(math.inf)
            if heartbeat_time is not None and heartbeat_timestamp is not None:
                for client_id in sorted(self._spec.client_distributions):
                    hb = Heartbeat(
                        client_id=client_id,
                        timestamp=heartbeat_timestamp,
                        true_time=heartbeat_time,
                    )
                    self._loop.schedule_at(
                        max(heartbeat_time, self._loop.now),
                        self._cluster.receive,
                        hb,
                        priority=-1,
                    )
            self._loop.run()
            self._cluster.flush()
            merge = self._cluster.live_merge()
            details: Dict[str, object] = {
                "loop": self._loop.stats(),
                "sim_end_time": self._loop.clock.now(),
                "late_arrivals": self._late,
                "duplicates_rejected": self._gate.duplicates_suppressed,
                "emitted_counts": self._cluster.emitted_counts(),
            }
            shard_batches = self._cluster.shard_batches()
        else:
            self._flush_wave(math.inf)
            for in_queue in self._in_queues:
                in_queue.put(("close", heartbeat_time, heartbeat_timestamp))
            try:
                self._drain_results(block=True)
            finally:
                if len(self._done_shards) < self._spec.num_shards:
                    self.close()
            for process in self._procs:
                process.join(timeout=self._join_timeout)
            merge = self._streaming.result()
            if self._telemetry is not None:
                for shard in sorted(self._summaries):
                    summary = self._summaries[shard]
                    self._telemetry.absorb(summary["stages"], summary["events"])
            details = {
                "late_arrivals": self._late,
                "duplicates_rejected": self._gate.duplicates_suppressed,
                "per_shard": {
                    shard: {
                        key: summary[key]
                        for key in ("message_count", "batch_count", "wall_seconds", "loop")
                    }
                    for shard, summary in sorted(self._summaries.items())
                },
            }
            shard_batches = self._shard_batches
            self.close()
        self._finished = RuntimeOutcome(
            backend=f"live-{self._runtime}",
            merge=merge,
            shard_batches=shard_batches,
            message_count=self._admitted,
            wall_seconds=time.perf_counter() - self._started,
            num_workers=self._num_workers,
            telemetry=self._telemetry,
            details=details,
        )
        return self._finished

    # ------------------------------------------------------------------ close
    def close(self) -> None:
        """Tear down live workers and queues (idempotent; sim mode is a no-op)."""
        if self._runtime != "procs":
            return
        for process in getattr(self, "_procs", []):
            if process.is_alive():
                process.terminate()
        out_queue = getattr(self, "_out_queue", None)
        if out_queue is not None:
            try:
                while True:
                    out_queue.get_nowait()
            except (Empty, OSError, ValueError):
                pass
        for process in getattr(self, "_procs", []):
            process.join(timeout=self._join_timeout)
        self._procs = []
        for queue in [out_queue, *getattr(self, "_in_queues", [])]:
            if queue is None:
                continue
            try:
                queue.close()
                queue.cancel_join_thread()
            except (OSError, ValueError):
                pass
        self._in_queues = []
        self._out_queue = None

    def __enter__(self) -> "LiveDispatcher":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


__all__ = [
    "LIVE_RUNTIMES",
    "LiveClusterSpec",
    "LiveDispatcher",
]
