"""Execution backends behind one runtime seam.

:class:`RuntimeBackend` abstracts *how* a cluster workload executes — clock
source, scheduling, channel delivery, endpoint lifecycle — so the same
frozen :class:`ClusterWorkload` runs on

* :class:`~repro.runtime.sim.SimBackend` — the deterministic event-loop
  substrate (the parity/chaos oracle), and
* :class:`~repro.runtime.procs.ProcBackend` — one worker process per shard
  with a coordinator-side streaming merge (throughput scales with cores),

with a bitwise-equal merged order (``RuntimeOutcome.fingerprint()``)
asserted across backends in ``tests/runtime`` and
``benchmarks/test_bench_runtime.py``.

Workloads come in two shapes: the frozen :class:`ClusterWorkload`
(messages generated once, replayed at their recorded virtual times — the
parity oracle's input) and the live path
(:class:`~repro.runtime.live.LiveDispatcher`), where traffic is submitted
one message at a time by the socket edge (:mod:`repro.edge`) and sequenced
incrementally under a per-source watermark discipline.  The parity
guarantee extends to the live path: a frozen workload streamed through
``submit()`` — or through real sockets — produces the same fingerprint as
the one-shot replay, on either runtime.
"""

from repro.runtime.base import (
    RUNTIME_NAMES,
    ClockHandle,
    ClusterWorkload,
    RuntimeBackend,
    RuntimeOutcome,
    Scheduler,
    SchedulerClock,
    WallClock,
    clock_of,
    resolve_backend,
)

# The concrete backends import cluster/harness modules that themselves type
# against repro.runtime.base, so they are re-exported lazily (PEP 562) to
# keep the package importable from either direction.
_LAZY = {
    "SimBackend": ("repro.runtime.sim", "SimBackend"),
    "ProcBackend": ("repro.runtime.procs", "ProcBackend"),
    "RestartPolicy": ("repro.runtime.procs", "RestartPolicy"),
    "WorkerCrashed": ("repro.runtime.procs", "WorkerCrashed"),
    "WorkerSupervisor": ("repro.runtime.procs", "WorkerSupervisor"),
    "LIVE_RUNTIMES": ("repro.runtime.live", "LIVE_RUNTIMES"),
    "LiveClusterSpec": ("repro.runtime.live", "LiveClusterSpec"),
    "LiveDispatcher": ("repro.runtime.live", "LiveDispatcher"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    value = getattr(importlib.import_module(module_name), attr)
    globals()[name] = value
    return value

__all__ = [
    "RUNTIME_NAMES",
    "ClockHandle",
    "Scheduler",
    "SchedulerClock",
    "WallClock",
    "clock_of",
    "ClusterWorkload",
    "RuntimeBackend",
    "RuntimeOutcome",
    "resolve_backend",
    "SimBackend",
    "ProcBackend",
    "RestartPolicy",
    "WorkerCrashed",
    "WorkerSupervisor",
    "LIVE_RUNTIMES",
    "LiveClusterSpec",
    "LiveDispatcher",
]
