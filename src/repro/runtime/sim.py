"""SimBackend: the deterministic event-loop execution backend.

The original execution substrate, rehomed behind
:class:`~repro.runtime.base.RuntimeBackend`: one
:class:`~repro.simulation.event_loop.EventLoop` hosts every shard's
:class:`~repro.core.online.OnlineTommySequencer` inside a
:class:`~repro.cluster.sharded.ShardedSequencer`, the workload's messages are
replayed at their frozen true times, and shard emissions stream into the
live :class:`~repro.cluster.merge.StreamingMerger`.

This backend is the parity/chaos oracle: its merged order is the reference
the real-process backend (:mod:`repro.runtime.procs`) must reproduce
bitwise, and it remains the only backend on which the chaos fault machinery
operates (faults need the deterministic clock).
"""

from __future__ import annotations

import time
from typing import Optional

from repro.cluster.harness import replay_messages
from repro.cluster.sharded import ShardedSequencer
from repro.obs.telemetry import Telemetry
from repro.runtime.base import ClockHandle, ClusterWorkload, RuntimeBackend, RuntimeOutcome
from repro.simulation.event_loop import EventLoop


class SimBackend(RuntimeBackend):
    """Run a cluster workload inside one deterministic event loop."""

    name = "sim"

    def __init__(
        self,
        telemetry: Optional[Telemetry] = None,
        dedupe_intake: bool = False,
        start_time: float = 0.0,
    ) -> None:
        self._telemetry = telemetry
        self._dedupe_intake = dedupe_intake
        self._start_time = start_time
        self._loop = EventLoop(start_time)

    @property
    def clock(self) -> ClockHandle:
        """Simulated-time clock of the loop backing the current/next run."""
        return self._loop.clock

    @property
    def loop(self) -> EventLoop:
        """The event loop backing the current/next run."""
        return self._loop

    def run(self, workload: ClusterWorkload) -> RuntimeOutcome:
        """Replay the workload through a sharded cluster on one loop."""
        loop = self._loop
        if loop.processed_events:
            # each run gets a pristine clock so replay times line up with the
            # workload's frozen true times
            loop = self._loop = EventLoop(self._start_time)
        cluster = ShardedSequencer(
            loop,
            workload.client_distributions,
            num_shards=workload.num_shards,
            config=workload.config,
            policy=workload.policy,
            streaming_merge=True,
            dedupe_intake=self._dedupe_intake,
            telemetry=self._telemetry,
            merge_topology=workload.merge_topology,
            merge_fanout=workload.merge_fanout,
        )
        heartbeat = workload.closing_heartbeat()
        heartbeat_time, heartbeat_timestamp = heartbeat if heartbeat is not None else (None, None)
        started = time.perf_counter()
        replay_messages(
            loop,
            cluster,
            workload.messages_by_true_time(),
            workload.client_ids,
            delay=workload.replay_delay,
            heartbeat_time=heartbeat_time,
            heartbeat_timestamp=heartbeat_timestamp,
        )
        loop.run()
        cluster.flush()
        merge = cluster.live_merge()
        wall_seconds = time.perf_counter() - started
        return RuntimeOutcome(
            backend=self.name,
            merge=merge,
            shard_batches=cluster.shard_batches(),
            message_count=len(workload.messages),
            wall_seconds=wall_seconds,
            num_workers=1,
            telemetry=self._telemetry,
            details={
                "loop": loop.stats(),
                "sim_end_time": loop.clock.now(),
                "emitted_counts": cluster.emitted_counts(),
                "observability": cluster.observability_report(),
            },
        )


__all__ = ["SimBackend"]
