"""The runtime seam: backends that execute a cluster workload.

Everything above the simulation substrate used to be welded to the concrete
:class:`~repro.simulation.event_loop.EventLoop` /
:class:`~repro.network.transport.Transport` stack.  This module extracts the
seam into small protocols and a backend abstraction so the same workload can
run on different execution substrates:

* :class:`Scheduler` — the scheduling surface components program against
  (``now`` / ``schedule_at`` / ``schedule_after`` / ``cancel``).  The
  deterministic :class:`~repro.simulation.event_loop.EventLoop` satisfies it
  structurally; entities, channels and transports are annotated against the
  protocol rather than the concrete loop.
* :class:`ClockHandle` — the one sanctioned way to *read* time.  Harness and
  workload code must not reach into ``loop.now`` directly; they ask the
  backend (or the scheduler's :class:`SchedulerClock`) for a handle.
* :class:`RuntimeBackend` — the execution backend: given a
  :class:`ClusterWorkload` (messages generated *once*, timestamps frozen) it
  sequences every shard, merges the per-shard streams and returns a
  :class:`RuntimeOutcome`.  :class:`~repro.runtime.sim.SimBackend` runs the
  whole cluster inside one deterministic event loop (the parity/chaos
  oracle); :class:`~repro.runtime.procs.ProcBackend` runs each shard in its
  own worker process so throughput scales with cores while the merged order
  stays bitwise identical (``RuntimeOutcome.fingerprint`` equality is the
  cross-backend parity contract, asserted in ``tests/runtime``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Protocol,
    Tuple,
    runtime_checkable,
)

from repro.cluster.merge import MergeOutcome, merge_fingerprint
from repro.cluster.router import ShardingPolicy, ShardRouter
from repro.core.config import TommyConfig
from repro.distributions.base import OffsetDistribution
from repro.network.message import SequencedBatch, TimestampedMessage

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.telemetry import Telemetry
    from repro.workloads.scenario import Scenario

#: Names accepted by :func:`resolve_backend` (and the CLI ``--runtime`` flag).
RUNTIME_NAMES: Tuple[str, ...] = ("sim", "procs")


@runtime_checkable
class ClockHandle(Protocol):
    """A read-only time source handed out by schedulers and backends."""

    def now(self) -> float:
        """Current time in seconds (simulated or wall, backend-defined)."""
        ...


@runtime_checkable
class Scheduler(Protocol):
    """The scheduling surface simulated components program against.

    :class:`~repro.simulation.event_loop.EventLoop` satisfies this
    structurally; components annotated against the protocol never need the
    concrete loop type.
    """

    @property
    def now(self) -> float: ...

    def schedule_at(
        self,
        when: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
        label: str = "",
        **kwargs: Any,
    ) -> Any: ...

    def schedule_after(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = 0,
        label: str = "",
        **kwargs: Any,
    ) -> Any: ...

    def cancel(self, event: Any) -> None: ...


class SchedulerClock:
    """The clock handle of a :class:`Scheduler` (simulated time)."""

    __slots__ = ("_scheduler",)

    def __init__(self, scheduler: Scheduler) -> None:
        self._scheduler = scheduler

    def now(self) -> float:
        """Current simulated time of the underlying scheduler."""
        return self._scheduler.now


class WallClock:
    """A wall-clock handle (monotonic, ``time.perf_counter`` based)."""

    __slots__ = ()

    def now(self) -> float:
        """Current wall-clock reading in seconds (monotonic)."""
        return time.perf_counter()


def clock_of(scheduler: Scheduler) -> ClockHandle:
    """The scheduler's clock handle.

    Prefers a native ``clock`` attribute (the
    :class:`~repro.simulation.event_loop.EventLoop` exposes one) and wraps
    anything else in a :class:`SchedulerClock` — harness/workload code reads
    time through the returned handle instead of touching ``loop.now``.
    """
    native = getattr(scheduler, "clock", None)
    if native is not None and callable(getattr(native, "now", None)):
        return native
    return SchedulerClock(scheduler)


@dataclass(frozen=True)
class ClusterWorkload:
    """A cluster workload with timestamps generated *once*.

    The message tuple is the ground truth both backends replay: each message
    arrives at ``true_time + replay_delay``, closing heartbeats fire at
    :meth:`closing_heartbeat`.  Because the timestamps are frozen at
    construction, running the same workload on the sim and the real-process
    backend is an apples-to-apples comparison — same inputs, same per-shard
    arrival schedule, bitwise-equal merged order.
    """

    messages: Tuple[TimestampedMessage, ...]
    client_distributions: Dict[str, OffsetDistribution]
    num_shards: int
    config: TommyConfig = field(default_factory=TommyConfig)
    policy: Optional[ShardingPolicy] = None
    merge_topology: str = "flat"
    merge_fanout: int = 2
    replay_delay: float = 0.0
    final_heartbeats: bool = True
    heartbeat_slack: float = 1e-3

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ValueError(f"num_shards must be at least 1, got {self.num_shards!r}")
        if self.replay_delay < 0:
            raise ValueError("replay_delay must be non-negative")
        missing = {m.client_id for m in self.messages} - set(self.client_distributions)
        if missing:
            raise ValueError(f"messages from unregistered clients: {sorted(missing)}")

    @classmethod
    def from_scenario(
        cls,
        scenario: "Scenario",
        num_shards: int,
        config: Optional[TommyConfig] = None,
        policy: Optional[ShardingPolicy] = None,
        merge_topology: str = "flat",
        merge_fanout: int = 2,
        replay_delay: float = 0.0,
    ) -> "ClusterWorkload":
        """Freeze an offline :class:`~repro.workloads.scenario.Scenario`.

        Wrappers carrying the scenario at ``.scenario`` (e.g.
        :class:`~repro.workloads.multiregion.MultiRegionScenario`) are
        unwrapped transparently.
        """
        scenario = getattr(scenario, "scenario", scenario)
        return cls(
            messages=tuple(scenario.messages),
            client_distributions=dict(scenario.client_distributions),
            num_shards=num_shards,
            config=config if config is not None else TommyConfig(),
            policy=policy,
            merge_topology=merge_topology,
            merge_fanout=merge_fanout,
            replay_delay=replay_delay,
        )

    @property
    def client_ids(self) -> Tuple[str, ...]:
        """All registered client ids (sorted)."""
        return tuple(sorted(self.client_distributions))

    def messages_by_true_time(self) -> List[TimestampedMessage]:
        """Messages sorted by ground-truth generation time (stable)."""
        return sorted(self.messages, key=lambda message: message.true_time)

    def closing_heartbeat(self) -> Optional[Tuple[float, float]]:
        """``(true_time, beacon_timestamp)`` of the closing heartbeats.

        Computed over the *whole* workload so every shard — whichever
        backend executes it — closes its completeness horizon at the same
        instant with the same beacon.  ``None`` when disabled or empty.
        """
        if not self.final_heartbeats or not self.messages:
            return None
        end_time = (
            max(message.true_time for message in self.messages)
            + self.replay_delay
            + self.heartbeat_slack
        )
        beacon = max(message.timestamp for message in self.messages) + self.heartbeat_slack
        return end_time, beacon

    def build_router(self) -> ShardRouter:
        """The routing table both backends share.

        Mirrors :class:`~repro.cluster.sharded.ShardedSequencer`'s
        construction exactly (clients assigned in sorted order), so the
        sim cluster and the process coordinator agree on shard ownership.
        """
        router = ShardRouter(self.num_shards, self.policy)
        for client_id in sorted(self.client_distributions):
            router.assign(client_id)
        return router

    def shard_assignments(self) -> List[List[str]]:
        """Per-shard sorted client-id lists under :meth:`build_router`."""
        router = self.build_router()
        return [router.clients_of(shard) for shard in range(self.num_shards)]


@dataclass(frozen=True)
class RuntimeOutcome:
    """What a backend produced for one workload run."""

    backend: str
    merge: MergeOutcome
    shard_batches: List[List[SequencedBatch]]
    message_count: int
    wall_seconds: float
    num_workers: int = 1
    telemetry: Optional["Telemetry"] = None
    details: Dict[str, object] = field(default_factory=dict)

    def fingerprint(self) -> List[Tuple[int, Tuple[Tuple[str, int], ...]]]:
        """Rank + message keys per merged batch — the parity contract.

        Two backends executed the same :class:`ClusterWorkload` correctly
        exactly when their fingerprints are equal.
        """
        return merge_fingerprint(self.merge)

    @property
    def messages_per_second(self) -> float:
        """Sequenced-and-merged messages per wall-clock second."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.message_count / self.wall_seconds

    @property
    def lost_shards(self) -> Tuple[int, ...]:
        """Shards excluded from the merge after an exhausted restart budget.

        Empty for every backend/run that completed all shards; populated by
        :class:`~repro.runtime.procs.ProcBackend` under
        ``on_shard_loss="exclude"``.
        """
        return tuple(self.details.get("lost_shards", ()) or ())


class RuntimeBackend:
    """Base class for execution backends.

    A backend owns a clock source and an endpoint lifecycle: ``run`` builds
    whatever endpoints it needs (simulated entities or worker processes),
    executes the workload to completion and tears the endpoints down;
    ``close`` releases anything still held (idempotent — backends are
    context managers).
    """

    #: short identifier, also the CLI ``--runtime`` value
    name: str = "abstract"

    @property
    def clock(self) -> ClockHandle:
        """The backend's time source (simulated or wall)."""
        raise NotImplementedError

    def run(self, workload: ClusterWorkload) -> RuntimeOutcome:
        """Execute ``workload`` to completion and return the outcome."""
        raise NotImplementedError

    def close(self) -> None:
        """Release backend resources (idempotent)."""

    def __enter__(self) -> "RuntimeBackend":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def resolve_backend(name: str, **kwargs: object) -> RuntimeBackend:
    """Construct the named backend (``"sim"`` or ``"procs"``).

    Keyword arguments are forwarded to the backend constructor; unknown
    names raise ``ValueError`` listing :data:`RUNTIME_NAMES`.
    """
    if name == "sim":
        from repro.runtime.sim import SimBackend

        return SimBackend(**kwargs)  # type: ignore[arg-type]
    if name == "procs":
        from repro.runtime.procs import ProcBackend

        return ProcBackend(**kwargs)  # type: ignore[arg-type]
    raise ValueError(f"unknown runtime {name!r}; expected one of {RUNTIME_NAMES}")


__all__ = [
    "RUNTIME_NAMES",
    "ClockHandle",
    "Scheduler",
    "SchedulerClock",
    "WallClock",
    "clock_of",
    "ClusterWorkload",
    "RuntimeOutcome",
    "RuntimeBackend",
    "resolve_backend",
]
