"""Sealed-bid (second-price) auctions resolved from sequencer batches.

Ad exchanges run an auction per impression; the paper's concern is the case
where the auction closes after the first *k* bids, so which bids count
depends on the sequencer's ordering.  :class:`SealedBidAuction` resolves a
second-price auction over the first ``capacity`` bids in sequence order,
allowing the experiments to compare winner sets under different sequencers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence


@dataclass(frozen=True)
class Bid:
    """One client's bid for an impression/slot."""

    client_id: str
    amount: float

    def __post_init__(self) -> None:
        if self.amount < 0:
            raise ValueError(f"bid amount must be non-negative, got {self.amount!r}")


@dataclass(frozen=True)
class AuctionOutcome:
    """Result of one auction: winner, price paid and the considered bids."""

    winner: Optional[str]
    clearing_price: float
    considered: tuple
    rejected_late: tuple

    @property
    def had_winner(self) -> bool:
        """True when at least one bid was considered."""
        return self.winner is not None


class SealedBidAuction:
    """Second-price auction over the first ``capacity`` bids in arrival order."""

    def __init__(self, capacity: Optional[int] = None, reserve_price: float = 0.0) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError("capacity must be at least 1 when given")
        if reserve_price < 0:
            raise ValueError("reserve_price must be non-negative")
        self._capacity = capacity
        self._reserve = float(reserve_price)

    @property
    def capacity(self) -> Optional[int]:
        """Maximum number of bids considered (None = all bids)."""
        return self._capacity

    @property
    def reserve_price(self) -> float:
        """Minimum acceptable clearing price."""
        return self._reserve

    def resolve(self, bids_in_order: Sequence[Bid]) -> AuctionOutcome:
        """Resolve the auction over bids presented in sequence order.

        Bids beyond ``capacity`` arrive too late and are rejected — this is
        where an unfair sequencer changes outcomes.  Among considered bids,
        the highest wins and pays the second-highest amount (or the reserve
        price when it is higher / there is a single bid).
        """
        bids = list(bids_in_order)
        if self._capacity is not None:
            considered = bids[: self._capacity]
            rejected = bids[self._capacity :]
        else:
            considered = bids
            rejected = []

        eligible = [bid for bid in considered if bid.amount >= self._reserve]
        if not eligible:
            return AuctionOutcome(
                winner=None,
                clearing_price=0.0,
                considered=tuple(considered),
                rejected_late=tuple(rejected),
            )
        ranked = sorted(eligible, key=lambda bid: (-bid.amount, bid.client_id))
        winner = ranked[0]
        second = ranked[1].amount if len(ranked) > 1 else self._reserve
        clearing = max(second, self._reserve)
        return AuctionOutcome(
            winner=winner.client_id,
            clearing_price=clearing,
            considered=tuple(considered),
            rejected_late=tuple(rejected),
        )
