"""Downstream applications consuming sequencer output.

The paper motivates fair sequencing with *auction-apps*: financial exchanges,
ad exchanges and competitive marketplaces where the order of writes decides
who wins.  Three concrete consumers are provided so the examples and
fairness-impact experiments exercise a realistic end-to-end path:

* :class:`LimitOrderBook` — a price-time-priority matching engine (financial
  exchange),
* :class:`SealedBidAuction` — a second-price auction resolved per batch (ad
  exchange / marketplace),
* :class:`ReplicatedLog` — a deterministic state-machine log that records the
  batch order (the general sequencing consumer of NOPaxos/Hydra-style
  systems).
"""

from repro.apps.orderbook import LimitOrderBook, Order, OrderSide, Trade
from repro.apps.auction import AuctionOutcome, Bid, SealedBidAuction
from repro.apps.replicated_log import LogEntry, ReplicatedLog

__all__ = [
    "LimitOrderBook",
    "Order",
    "OrderSide",
    "Trade",
    "SealedBidAuction",
    "Bid",
    "AuctionOutcome",
    "ReplicatedLog",
    "LogEntry",
]
