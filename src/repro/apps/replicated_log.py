"""A deterministic replicated log consuming sequencer batches.

Network sequencers (NOPaxos, Hydra, Eris) feed a replicated state machine;
here the state machine is a simple append-only log keyed by batch rank.  The
log validates the invariants any consumer relies on: ranks arrive in order
without gaps, and no message is delivered twice.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set, Tuple

from repro.network.message import SequencedBatch, TimestampedMessage


@dataclass(frozen=True)
class LogEntry:
    """One applied batch."""

    rank: int
    message_keys: Tuple[Tuple[str, int], ...]
    applied_at: float


class ReplicatedLog:
    """Applies batches in rank order, enforcing exactly-once delivery."""

    def __init__(self, name: str = "log") -> None:
        self._name = name
        self._entries: List[LogEntry] = []
        self._applied_keys: Set[Tuple[str, int]] = set()
        self._next_rank = 0

    @property
    def name(self) -> str:
        """Replica name."""
        return self._name

    @property
    def entries(self) -> List[LogEntry]:
        """Applied entries in rank order."""
        return list(self._entries)

    @property
    def next_rank(self) -> int:
        """The rank the log expects next."""
        return self._next_rank

    @property
    def applied_message_count(self) -> int:
        """Total messages applied so far."""
        return len(self._applied_keys)

    def apply(self, batch: SequencedBatch, applied_at: float = 0.0) -> LogEntry:
        """Apply one batch; raises on rank gaps, reordering or duplicates."""
        if batch.rank != self._next_rank:
            raise ValueError(
                f"log {self._name!r} expected rank {self._next_rank}, got {batch.rank}"
            )
        duplicate = [message.key for message in batch.messages if message.key in self._applied_keys]
        if duplicate:
            raise ValueError(f"duplicate delivery of messages {duplicate!r}")
        entry = LogEntry(
            rank=batch.rank,
            message_keys=tuple(message.key for message in batch.messages),
            applied_at=float(applied_at),
        )
        self._entries.append(entry)
        self._applied_keys.update(entry.message_keys)
        self._next_rank += 1
        return entry

    def apply_all(self, batches: List[SequencedBatch]) -> List[LogEntry]:
        """Apply a list of batches in order."""
        return [self.apply(batch) for batch in batches]

    def contains(self, message: TimestampedMessage) -> bool:
        """True when ``message`` has been applied."""
        return message.key in self._applied_keys
