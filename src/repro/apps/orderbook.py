"""A price-time-priority limit order book.

The matching engine processes orders strictly in the order handed to it, so
the *sequencer* decides time priority.  Feeding the same set of orders
through different sequencers therefore yields different fills — which is
exactly the unfairness the paper is about, and what the exchange example and
fairness-impact benchmark measure.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

_ORDER_COUNTER = itertools.count()


class OrderSide(enum.Enum):
    """Buy or sell."""

    BUY = "buy"
    SELL = "sell"


@dataclass(frozen=True)
class Order:
    """A limit order submitted by one client."""

    client_id: str
    side: OrderSide
    price: float
    quantity: int
    order_id: int = field(default_factory=lambda: next(_ORDER_COUNTER))

    def __post_init__(self) -> None:
        if self.price <= 0:
            raise ValueError(f"price must be positive, got {self.price!r}")
        if self.quantity <= 0:
            raise ValueError(f"quantity must be positive, got {self.quantity!r}")


@dataclass(frozen=True)
class Trade:
    """One execution between a resting order and an incoming order."""

    buy_client: str
    sell_client: str
    price: float
    quantity: int
    resting_order_id: int
    incoming_order_id: int


@dataclass
class _BookLevel:
    price: float
    orders: List[List]  # [order, remaining_quantity]


class LimitOrderBook:
    """Continuous double auction with price-time priority."""

    def __init__(self, symbol: str = "REPRO") -> None:
        self._symbol = symbol
        # resting orders: list of [Order, remaining] kept sorted by priority
        self._bids: List[List] = []
        self._asks: List[List] = []
        self._trades: List[Trade] = []
        self._processed = 0

    # -------------------------------------------------------------- queries
    @property
    def symbol(self) -> str:
        """Instrument symbol."""
        return self._symbol

    @property
    def trades(self) -> List[Trade]:
        """All executions so far, in execution order."""
        return list(self._trades)

    @property
    def processed_orders(self) -> int:
        """Number of orders submitted to the book."""
        return self._processed

    def best_bid(self) -> Optional[float]:
        """Highest resting buy price, if any."""
        return self._bids[0][0].price if self._bids else None

    def best_ask(self) -> Optional[float]:
        """Lowest resting sell price, if any."""
        return self._asks[0][0].price if self._asks else None

    def depth(self) -> Dict[str, int]:
        """Total resting quantity on each side."""
        return {
            "bids": sum(remaining for _order, remaining in self._bids),
            "asks": sum(remaining for _order, remaining in self._asks),
        }

    # -------------------------------------------------------------- matching
    def submit(self, order: Order) -> List[Trade]:
        """Process one order: match against the opposite side, rest the remainder."""
        self._processed += 1
        remaining = order.quantity
        executed: List[Trade] = []
        if order.side is OrderSide.BUY:
            remaining, executed = self._match(order, remaining, self._asks, is_buy=True)
            if remaining > 0:
                self._insert(self._bids, order, remaining, descending=True)
        else:
            remaining, executed = self._match(order, remaining, self._bids, is_buy=False)
            if remaining > 0:
                self._insert(self._asks, order, remaining, descending=False)
        self._trades.extend(executed)
        return executed

    def submit_all(self, orders: List[Order]) -> List[Trade]:
        """Process ``orders`` in the given sequence and return all trades."""
        all_trades: List[Trade] = []
        for order in orders:
            all_trades.extend(self.submit(order))
        return all_trades

    def _match(
        self, incoming: Order, remaining: int, book: List[List], is_buy: bool
    ) -> Tuple[int, List[Trade]]:
        executed: List[Trade] = []
        while remaining > 0 and book:
            resting_order, resting_remaining = book[0]
            crosses = (
                incoming.price >= resting_order.price
                if is_buy
                else incoming.price <= resting_order.price
            )
            if not crosses:
                break
            quantity = min(remaining, resting_remaining)
            trade = Trade(
                buy_client=incoming.client_id if is_buy else resting_order.client_id,
                sell_client=resting_order.client_id if is_buy else incoming.client_id,
                price=resting_order.price,
                quantity=quantity,
                resting_order_id=resting_order.order_id,
                incoming_order_id=incoming.order_id,
            )
            executed.append(trade)
            remaining -= quantity
            if resting_remaining == quantity:
                book.pop(0)
            else:
                book[0][1] = resting_remaining - quantity
        return remaining, executed

    @staticmethod
    def _insert(book: List[List], order: Order, remaining: int, descending: bool) -> None:
        index = 0
        while index < len(book):
            resting_price = book[index][0].price
            better = order.price > resting_price if descending else order.price < resting_price
            if better:
                break
            index += 1
        book.insert(index, [order, remaining])

    # ------------------------------------------------------------- summaries
    def fills_by_client(self) -> Dict[str, int]:
        """Executed quantity attributed to the aggressive (incoming) buyer/seller."""
        fills: Dict[str, int] = {}
        for trade in self._trades:
            fills[trade.buy_client] = fills.get(trade.buy_client, 0) + trade.quantity
            fills[trade.sell_client] = fills.get(trade.sell_client, 0) + trade.quantity
        return fills
