"""The omniscient observer's reference clock."""

from __future__ import annotations

from repro.simulation.event_loop import EventLoop


class ReferenceClock:
    """Global clock with infinite resolution, tied to the event loop's true time.

    The reference clock is only available to the evaluation harness (ground
    truth); no simulated participant may consult it for sequencing decisions.
    """

    def __init__(self, loop: EventLoop) -> None:
        self._loop = loop

    def now(self) -> float:
        """Current true time in seconds."""
        return self._loop.now

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return f"ReferenceClock(t={self.now():.9f})"
