"""Clock models.

A :class:`ReferenceClock` represents the omniscient observer's global clock
(paper Definition 1, footnote 2).  A :class:`LocalClock` is a client's clock:
its reading at true time ``t`` is ``t + offset(t)`` where the offset is drawn
from the client's offset distribution, optionally augmented by a slowly
varying drift process (:mod:`repro.clocks.drift`) and read jitter modelling
host data-path latency (paper §5, "Host-network variability").
:class:`TrueTimeClock` provides the Spanner-style bounded-uncertainty
interval API used by the TrueTime baseline sequencer.
"""

from repro.clocks.reference import ReferenceClock
from repro.clocks.drift import ConstantDrift, DriftModel, NoDrift, RandomWalkDrift, SteppedDrift
from repro.clocks.local import ClockReading, LocalClock
from repro.clocks.truetime import TrueTimeClock, TrueTimeInterval

__all__ = [
    "ReferenceClock",
    "DriftModel",
    "NoDrift",
    "ConstantDrift",
    "RandomWalkDrift",
    "SteppedDrift",
    "ClockReading",
    "LocalClock",
    "TrueTimeClock",
    "TrueTimeInterval",
]
