"""Clock drift models.

Drift is the slowly varying component of clock error: frequency error of the
oscillator integrated over time.  The paper flags drift as future work (§5);
we model it so experiments can quantify how much drift degrades Tommy when
the learned offset distribution becomes stale.
"""

from __future__ import annotations

import abc
import math
from typing import List, Optional, Tuple

import numpy as np


class DriftModel(abc.ABC):
    """Deterministic-in-seed model of accumulated drift at true time ``t``."""

    @abc.abstractmethod
    def offset_at(self, true_time: float) -> float:
        """Accumulated drift (seconds) at true time ``true_time``."""

    def reset(self) -> None:
        """Reset any internal state (default: nothing to reset)."""


class NoDrift(DriftModel):
    """Perfectly stable oscillator — drift is identically zero."""

    def offset_at(self, true_time: float) -> float:
        return 0.0


class ConstantDrift(DriftModel):
    """Constant frequency error: drift grows linearly with elapsed time.

    ``rate_ppm`` is expressed in parts-per-million, the conventional unit for
    oscillator error (10 ppm = 10 microseconds of drift per second).
    """

    def __init__(self, rate_ppm: float, start_time: float = 0.0) -> None:
        self._rate = float(rate_ppm) * 1e-6
        self._start = float(start_time)

    @property
    def rate_ppm(self) -> float:
        """Frequency error in parts-per-million."""
        return self._rate * 1e6

    def offset_at(self, true_time: float) -> float:
        return self._rate * (float(true_time) - self._start)


class SteppedDrift(DriftModel):
    """A base drift model plus scheduled instantaneous clock steps.

    Every step ``(at, amount)`` shifts the clock permanently for all reads
    at true time >= ``at`` — the fault-injection hook behind
    :class:`~repro.chaos.faults.ClockStep` (failed resynchronizations, VM
    migrations, leap-second style jumps).  Because the offset is a pure
    function of query time, a step can be installed any time before the
    first read past ``at`` without perturbing earlier reads, which keeps
    chaos runs deterministic.
    """

    def __init__(self, base: Optional[DriftModel] = None) -> None:
        self._base = base if base is not None else NoDrift()
        self._steps: List[Tuple[float, float]] = []

    @property
    def base(self) -> DriftModel:
        """The wrapped drift model."""
        return self._base

    @property
    def steps(self) -> List[Tuple[float, float]]:
        """Installed ``(at, amount)`` steps, ordered by time."""
        return list(self._steps)

    def add_step(self, at: float, amount: float) -> None:
        """Install a permanent clock step of ``amount`` seconds at ``at``."""
        if not math.isfinite(at) or not math.isfinite(amount):
            raise ValueError(f"step time and amount must be finite, got ({at!r}, {amount!r})")
        self._steps.append((float(at), float(amount)))
        self._steps.sort(key=lambda step: step[0])

    def offset_at(self, true_time: float) -> float:
        total = self._base.offset_at(true_time)
        for at, amount in self._steps:
            if true_time < at:
                break
            total += amount
        return total

    def reset(self) -> None:
        """Reset the wrapped model; installed steps are configuration and stay."""
        self._base.reset()


class RandomWalkDrift(DriftModel):
    """Drift that wanders as a random walk sampled on a fixed step grid.

    The walk is generated lazily but deterministically from the seed, so two
    queries at the same time return the same drift regardless of query order.
    """

    def __init__(self, step_std: float, step_interval: float = 1.0, seed: int = 0) -> None:
        if step_interval <= 0:
            raise ValueError(f"step_interval must be positive, got {step_interval!r}")
        if step_std < 0:
            raise ValueError(f"step_std must be non-negative, got {step_std!r}")
        self._step_std = float(step_std)
        self._interval = float(step_interval)
        self._seed = int(seed)
        self._walk = np.zeros(1)

    def _extend_to(self, steps: int) -> None:
        if steps < self._walk.size:
            return
        rng = np.random.default_rng(self._seed)
        increments = rng.normal(0.0, self._step_std, size=steps + 1)
        walk = np.concatenate([[0.0], np.cumsum(increments)])
        self._walk = walk

    def offset_at(self, true_time: float) -> float:
        if true_time <= 0:
            return 0.0
        position = float(true_time) / self._interval
        upper = int(np.ceil(position)) + 1
        self._extend_to(upper)
        lower_index = int(np.floor(position))
        frac = position - lower_index
        lower = self._walk[lower_index]
        upper_value = self._walk[min(lower_index + 1, self._walk.size - 1)]
        return float(lower + frac * (upper_value - lower))

    def reset(self) -> None:
        self._walk = np.zeros(1)
