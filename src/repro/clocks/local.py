"""A client's local clock: true time + stochastic offset + drift + read jitter."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.clocks.drift import DriftModel, NoDrift
from repro.distributions.base import OffsetDistribution
from repro.simulation.event_loop import EventLoop


@dataclass(frozen=True)
class ClockReading:
    """One clock read: the reported timestamp plus ground-truth bookkeeping."""

    reported: float
    true_time: float
    offset: float
    drift: float
    jitter: float

    @property
    def error(self) -> float:
        """Total error of the reported timestamp relative to true time."""
        return self.reported - self.true_time


class LocalClock:
    """A client's clock.

    At every read the clock reports ``true_time + theta`` where ``theta`` is
    a fresh draw from the client's offset distribution (matching the paper's
    evaluation methodology, §4: "At message generation, a client reads the
    wall-clock time t, samples noise eps from the distribution, and tags the
    message with T = t + eps"), plus accumulated drift and optional
    host-data-path read jitter.

    Parameters
    ----------
    loop:
        The event loop providing true time.
    offset_distribution:
        Distribution of the synchronization offset ``theta``.
    rng:
        Random generator for offset and jitter draws.
    drift:
        Optional :class:`DriftModel`; defaults to no drift.
    read_jitter_std:
        Standard deviation of additional zero-mean Gaussian read jitter.
    resample_every_read:
        When ``True`` (the default, and the paper's model) a fresh offset is
        drawn on every read; when ``False`` the offset is drawn once and held
        fixed, modelling a stable but unknown offset.
    """

    def __init__(
        self,
        loop: EventLoop,
        offset_distribution: OffsetDistribution,
        rng: np.random.Generator,
        drift: Optional[DriftModel] = None,
        read_jitter_std: float = 0.0,
        resample_every_read: bool = True,
    ) -> None:
        if read_jitter_std < 0:
            raise ValueError(f"read_jitter_std must be non-negative, got {read_jitter_std!r}")
        self._loop = loop
        self._distribution = offset_distribution
        self._rng = rng
        self._drift = drift if drift is not None else NoDrift()
        self._read_jitter_std = float(read_jitter_std)
        self._resample = bool(resample_every_read)
        self._fixed_offset: Optional[float] = None
        self._reads = 0

    @property
    def offset_distribution(self) -> OffsetDistribution:
        """The (ground truth) offset distribution this clock samples from."""
        return self._distribution

    @property
    def drift_model(self) -> DriftModel:
        """The drift model applied on top of the sampled offsets."""
        return self._drift

    @property
    def reads(self) -> int:
        """Number of reads performed so far."""
        return self._reads

    def _draw_offset(self) -> float:
        if self._resample:
            return float(self._distribution.sample(self._rng))
        if self._fixed_offset is None:
            self._fixed_offset = float(self._distribution.sample(self._rng))
        return self._fixed_offset

    def read(self) -> ClockReading:
        """Read the clock, returning the reported timestamp and ground truth."""
        true_time = self._loop.now
        offset = self._draw_offset()
        drift = self._drift.offset_at(true_time)
        jitter = (
            float(self._rng.normal(0.0, self._read_jitter_std))
            if self._read_jitter_std > 0
            else 0.0
        )
        self._reads += 1
        return ClockReading(
            reported=true_time + offset + drift + jitter,
            true_time=true_time,
            offset=offset,
            drift=drift,
            jitter=jitter,
        )

    def now(self) -> float:
        """Convenience: the reported timestamp of a fresh read."""
        return self.read().reported
