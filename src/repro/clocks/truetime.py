"""Spanner TrueTime-style interval clock.

The paper's baseline (§4) emulates TrueTime by giving every message an
uncertainty interval ``[T - 3*sigma, T + 3*sigma]`` and assigning the same
rank to messages whose intervals overlap.  :class:`TrueTimeClock` produces
those intervals from a :class:`~repro.clocks.local.LocalClock`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.clocks.local import ClockReading, LocalClock


@dataclass(frozen=True)
class TrueTimeInterval:
    """A bounded-uncertainty timestamp ``[earliest, latest]``."""

    earliest: float
    latest: float

    def __post_init__(self) -> None:
        if self.latest < self.earliest:
            raise ValueError(f"latest ({self.latest}) precedes earliest ({self.earliest})")

    @property
    def midpoint(self) -> float:
        """The centre of the interval."""
        return 0.5 * (self.earliest + self.latest)

    @property
    def width(self) -> float:
        """Total width of the uncertainty interval."""
        return self.latest - self.earliest

    def overlaps(self, other: "TrueTimeInterval") -> bool:
        """True when the two intervals share at least one point."""
        return self.earliest <= other.latest and other.earliest <= self.latest

    def definitely_before(self, other: "TrueTimeInterval") -> bool:
        """True when this interval ends strictly before the other begins."""
        return self.latest < other.earliest


class TrueTimeClock:
    """Wraps a :class:`LocalClock` to produce TrueTime-style intervals."""

    def __init__(self, clock: LocalClock, sigma_multiplier: float = 3.0) -> None:
        if sigma_multiplier <= 0:
            raise ValueError(f"sigma_multiplier must be positive, got {sigma_multiplier!r}")
        self._clock = clock
        self._multiplier = float(sigma_multiplier)

    @property
    def sigma_multiplier(self) -> float:
        """Number of standard deviations on either side of the reported time."""
        return self._multiplier

    def interval_for(self, reading: ClockReading) -> TrueTimeInterval:
        """The uncertainty interval around an existing clock reading."""
        half_width = self._multiplier * self._clock.offset_distribution.std
        return TrueTimeInterval(reading.reported - half_width, reading.reported + half_width)

    def now_interval(self) -> TrueTimeInterval:
        """Read the clock and return the interval around the fresh reading."""
        return self.interval_for(self._clock.read())
